package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// This file is a hand-rolled implementation of the Prometheus text exposition
// format (version 0.0.4): enough of the writer to serve GET /metrics from
// atomic counters, and enough of a parser (ValidateExposition) for tests and
// the CI load-smoke gate to reject malformed output without depending on
// client_golang.

// escapeHelp escapes a HELP text: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double-quote and newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus expects: shortest
// round-trip float, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// L is an ordered label set. Order is preserved in the output so exposition
// is deterministic (golden-file testable).
type L []struct{ Name, Value string }

// Label constructs one name/value pair for an L literal-free call site.
func Label(name, value string) struct{ Name, Value string } {
	return struct{ Name, Value string }{name, value}
}

// ExpositionWriter renders Prometheus text exposition. Use Header once per
// metric family, then Sample for each series. The zero value is ready to use.
type ExpositionWriter struct {
	b strings.Builder
}

// Header writes the # HELP and # TYPE lines for a metric family.
// typ is one of "counter", "gauge", "histogram", "untyped".
func (w *ExpositionWriter) Header(name, help, typ string) {
	w.b.WriteString("# HELP ")
	w.b.WriteString(name)
	w.b.WriteByte(' ')
	w.b.WriteString(escapeHelp(help))
	w.b.WriteByte('\n')
	w.b.WriteString("# TYPE ")
	w.b.WriteString(name)
	w.b.WriteByte(' ')
	w.b.WriteString(typ)
	w.b.WriteByte('\n')
}

// Sample writes one series line: name{labels} value.
func (w *ExpositionWriter) Sample(name string, labels L, value float64) {
	w.b.WriteString(name)
	if len(labels) > 0 {
		w.b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.b.WriteByte(',')
			}
			w.b.WriteString(l.Name)
			w.b.WriteString(`="`)
			w.b.WriteString(escapeLabel(l.Value))
			w.b.WriteByte('"')
		}
		w.b.WriteByte('}')
	}
	w.b.WriteByte(' ')
	w.b.WriteString(formatValue(value))
	w.b.WriteByte('\n')
}

// Hist writes a histogram family's series for one label set: cumulative
// le-buckets (including +Inf), _sum and _count. Call Header(name, help,
// "histogram") once before the first Hist of the family.
func (w *ExpositionWriter) Hist(name string, labels L, snap HistogramSnapshot) {
	cumulative := uint64(0)
	for i, bound := range snap.Bounds {
		cumulative += snap.Counts[i]
		bucketLabels := append(append(L{}, labels...), Label("le", formatValue(bound)))
		w.Sample(name+"_bucket", bucketLabels, float64(cumulative))
	}
	cumulative += snap.Counts[len(snap.Bounds)]
	infLabels := append(append(L{}, labels...), Label("le", "+Inf"))
	w.Sample(name+"_bucket", infLabels, float64(cumulative))
	w.Sample(name+"_sum", labels, snap.Sum)
	w.Sample(name+"_count", labels, float64(cumulative))
}

// String returns the exposition rendered so far.
func (w *ExpositionWriter) String() string {
	return w.b.String()
}

// --- histogram ---

// DefaultLatencyBuckets are the explicit bucket upper bounds, in seconds, for
// request/step latency histograms. They span 100µs (cached bitmap filters) to
// 10s (cold holdout replays over large tables), roughly ×~3 per step.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10,
}

// Histogram is a fixed-bucket latency histogram safe for concurrent use. All
// mutation is atomic adds; observation order across buckets and sum is not a
// consistent cut, which Prometheus semantics tolerate (scrapes are racy by
// design).
type Histogram struct {
	bounds []float64       // sorted upper bounds; implicit +Inf after the last
	counts []atomic.Uint64 // len(bounds)+1
	sumNs  atomic.Int64    // sum kept in integer ns so adds stay atomic
}

// NewHistogram returns a histogram with the given sorted upper bounds in
// seconds. nil selects DefaultLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be sorted")
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	v := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: le-bucket semantics
	h.counts[i].Add(1)
	h.sumNs.Add(d.Nanoseconds())
}

// HistogramSnapshot is a point-in-time read of a histogram: per-bucket
// (non-cumulative) counts aligned with Bounds plus the overflow bucket at
// Counts[len(Bounds)], and the sum of observations in seconds.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
}

// Snapshot reads the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{Bounds: h.bounds, Counts: make([]uint64, len(h.counts))}
	for i := range h.counts {
		snap.Counts[i] = h.counts[i].Load()
	}
	snap.Sum = float64(h.sumNs.Load()) / 1e9
	return snap
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// --- exposition validation (used by tests and the CI load-smoke gate) ---

var metricNameOK = func(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// ValidateExposition parses Prometheus text exposition strictly enough to
// catch the mistakes a hand-rolled writer can make: bad metric names,
// unbalanced or unescaped label quoting, unparsable values, TYPE lines with
// unknown types, and samples for families never declared with # TYPE. It
// returns the number of sample lines on success.
func ValidateExposition(text string) (samples int, err error) {
	declared := map[string]string{} // family -> type
	lines := strings.Split(text, "\n")
	for lineNo, line := range lines {
		if line == "" {
			continue
		}
		n := lineNo + 1
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return 0, fmt.Errorf("line %d: malformed comment %q", n, line)
			}
			if !metricNameOK(fields[2]) {
				return 0, fmt.Errorf("line %d: bad metric name %q", n, fields[2])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return 0, fmt.Errorf("line %d: TYPE line needs a type", n)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return 0, fmt.Errorf("line %d: unknown metric type %q", n, fields[3])
				}
				declared[fields[2]] = fields[3]
			}
			continue
		}
		name, rest, lerr := parseSampleName(line)
		if lerr != nil {
			return 0, fmt.Errorf("line %d: %w", n, lerr)
		}
		family := name
		if declared[family] == "" {
			// Histogram series use the family name plus a suffix.
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if base, ok := strings.CutSuffix(name, suffix); ok && declared[base] == "histogram" {
					family = base
					break
				}
			}
			if declared[family] == "" {
				return 0, fmt.Errorf("line %d: sample %q has no # TYPE declaration", n, name)
			}
		}
		value := strings.TrimSpace(rest)
		// An optional timestamp may follow the value; the writer never emits
		// one, but tolerate it like Prometheus does.
		if i := strings.IndexByte(value, ' '); i >= 0 {
			ts := value[i+1:]
			value = value[:i]
			if _, terr := strconv.ParseInt(ts, 10, 64); terr != nil {
				return 0, fmt.Errorf("line %d: bad timestamp %q", n, ts)
			}
		}
		switch value {
		case "+Inf", "-Inf", "NaN", "Nan":
		default:
			if _, verr := strconv.ParseFloat(value, 64); verr != nil {
				return 0, fmt.Errorf("line %d: bad value %q", n, value)
			}
		}
		samples++
	}
	if samples == 0 {
		return 0, fmt.Errorf("exposition contains no samples")
	}
	return samples, nil
}

// parseSampleName splits a sample line into its metric name (validating any
// label block) and the remainder after the closing brace or name.
func parseSampleName(line string) (name, rest string, err error) {
	brace := strings.IndexByte(line, '{')
	space := strings.IndexByte(line, ' ')
	if brace == -1 || (space != -1 && space < brace) {
		if space == -1 {
			return "", "", fmt.Errorf("sample line has no value: %q", line)
		}
		name = line[:space]
		if !metricNameOK(name) {
			return "", "", fmt.Errorf("bad metric name %q", name)
		}
		return name, line[space+1:], nil
	}
	name = line[:brace]
	if !metricNameOK(name) {
		return "", "", fmt.Errorf("bad metric name %q", name)
	}
	rest, err = parseLabels(line[brace+1:])
	return name, rest, err
}

// parseLabels consumes `name="value",...}` and returns what follows the brace.
func parseLabels(s string) (rest string, err error) {
	for {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return "", fmt.Errorf("malformed label block near %q", s)
		}
		if !metricNameOK(s[:eq]) {
			return "", fmt.Errorf("bad label name %q", s[:eq])
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return "", fmt.Errorf("label value must be quoted near %q", s)
		}
		s = s[1:]
		// Scan to the closing quote, honoring backslash escapes.
		i := 0
		for {
			if i >= len(s) {
				return "", fmt.Errorf("unterminated label value")
			}
			if s[i] == '\\' {
				if i+1 >= len(s) {
					return "", fmt.Errorf("dangling escape in label value")
				}
				switch s[i+1] {
				case '\\', '"', 'n':
				default:
					return "", fmt.Errorf("invalid escape \\%c in label value", s[i+1])
				}
				i += 2
				continue
			}
			if s[i] == '"' {
				break
			}
			i++
		}
		s = s[i+1:]
		if len(s) == 0 {
			return "", fmt.Errorf("label block not closed")
		}
		switch s[0] {
		case ',':
			s = s[1:]
		case '}':
			rest = strings.TrimPrefix(s[1:], " ")
			if rest == "" {
				return "", fmt.Errorf("sample line has no value")
			}
			return rest, nil
		default:
			return "", fmt.Errorf("expected ',' or '}' near %q", s)
		}
	}
}
