package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"testing"
	"time"
)

// TestSlowLogThreshold checks only over-threshold operations are logged, as
// one JSON line carrying the span tree under slow_op.trace.
func TestSlowLogThreshold(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	sl := NewSlowLog(logger, 10*time.Millisecond)

	sl.Observe("request", "GET /fast", 2*time.Millisecond, nil)
	if buf.Len() != 0 || sl.Logged() != 0 {
		t.Fatalf("fast operation was logged: %s", buf.String())
	}

	tr := NewTracer(1)
	span := tr.Start("GET /slow")
	span.Child(KindStep, "step.x").End()
	span.End()
	sl.Observe("request", "GET /slow", 50*time.Millisecond, span)
	if sl.Logged() != 1 {
		t.Fatalf("Logged = %d, want 1", sl.Logged())
	}

	var line struct {
		Level  string `json:"level"`
		Msg    string `json:"msg"`
		SlowOp struct {
			Kind        string   `json:"kind"`
			Name        string   `json:"name"`
			DurationMs  float64  `json:"duration_ms"`
			ThresholdMs float64  `json:"threshold_ms"`
			Trace       SpanJSON `json:"trace"`
		} `json:"slow_op"`
	}
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("slow-op line is not one JSON document: %v\n%s", err, buf.String())
	}
	if line.Level != "WARN" || line.Msg != "slow operation" {
		t.Errorf("level=%q msg=%q", line.Level, line.Msg)
	}
	o := line.SlowOp
	if o.Kind != "request" || o.Name != "GET /slow" || o.DurationMs != 50 || o.ThresholdMs != 10 {
		t.Errorf("slow_op fields = %+v", o)
	}
	if o.Trace.Name != "GET /slow" || len(o.Trace.Children) != 1 {
		t.Errorf("slow_op trace missing span tree: %+v", o.Trace)
	}
}

// TestSlowLogDisabled covers both disabled constructions and the nil no-op.
func TestSlowLogDisabled(t *testing.T) {
	if NewSlowLog(nil, time.Second) != nil {
		t.Error("nil logger should disable the slow log")
	}
	if NewSlowLog(slog.Default(), 0) != nil {
		t.Error("zero threshold should disable the slow log")
	}
	var sl *SlowLog
	sl.Observe("request", "GET /x", time.Hour, nil) // must not panic
	if sl.Logged() != 0 || sl.Threshold() != 0 {
		t.Error("nil slow log reported activity")
	}
}
