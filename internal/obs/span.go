// Package obs is the service's dependency-free observability layer:
// request-scoped span trees captured into a bounded lock-light ring buffer
// (tracer.go), Prometheus text exposition rendered from atomic counters and
// explicit-bucket latency histograms (prom.go), a structured slow-operation
// log (slowlog.go) and build metadata (buildinfo.go). Everything is stdlib
// only — no client_golang, no OpenTelemetry — because the substrate it
// observes (bitmap kernels at microsecond latency) cannot afford either the
// dependency or the per-call overhead.
//
// The central design rule is the nil fast path: a nil *Tracer starts nil
// *Spans, and every Span method is a no-op on a nil receiver, so code under
// instrumentation calls Child/Set/End unconditionally and pays zero
// allocations when tracing is off. Only requests that are actually traced
// allocate.
package obs

import (
	"context"
	"time"
)

// SpanKind classifies a span's depth in the request tree.
const (
	// KindRequest marks a root span opened by the HTTP middleware.
	KindRequest = "request"
	// KindStep marks a session step applied inside a request.
	KindStep = "step"
	// KindKernel marks a dataset kernel execution (predicate compile,
	// aggregation, gather) inside a step.
	KindKernel = "kernel"
)

// Attr is one span annotation: a key and a JSON-serializable value.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// Span is one timed operation in a request's trace tree. Spans are built by
// exactly one goroutine (the request's), ended exactly once, and become
// immutable — and therefore safely shareable with /debug/trace readers — when
// their root is ended and captured by the Tracer.
//
// All methods are no-ops on a nil receiver: untraced code paths carry nil
// spans at zero cost.
type Span struct {
	name     string
	kind     string
	start    time.Time
	duration time.Duration
	attrs    []Attr
	children []*Span
	tracer   *Tracer // non-nil on roots only; capture target of End
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's measured duration (0 on nil or before End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.duration
}

// Child opens a sub-span under s. It returns nil when s is nil, so entire
// untraced call chains stay allocation-free.
func (s *Span) Child(kind, name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, kind: kind, start: time.Now()}
	s.children = append(s.children, c)
	return c
}

// Set records one annotation on the span. Values should be small scalars
// (numbers, strings, bools); they are serialized verbatim into the trace JSON
// and the slow-op log.
func (s *Span) Set(key string, value any) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End stamps the span's duration. Ending a root span hands the finished tree
// to its tracer's ring buffer. End is a no-op on nil and idempotent on roots
// (only the first End captures).
func (s *Span) End() {
	if s == nil {
		return
	}
	if s.duration == 0 {
		s.duration = time.Since(s.start)
		if s.duration == 0 {
			s.duration = 1 // a captured span is always distinguishable from an unfinished one
		}
	}
	if s.tracer != nil {
		t := s.tracer
		s.tracer = nil
		t.capture(s)
	}
}

// SpanJSON is the wire form of a span tree, served by /debug/trace and
// embedded in slow-op log lines.
type SpanJSON struct {
	Name       string         `json:"name"`
	Kind       string         `json:"kind,omitempty"`
	Start      time.Time      `json:"start"`
	DurationMs float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []SpanJSON     `json:"children,omitempty"`
}

// JSON converts the (finished) span tree to its wire form. Call only after
// End: a live tree is still being mutated by its owning goroutine.
func (s *Span) JSON() SpanJSON {
	if s == nil {
		return SpanJSON{}
	}
	out := SpanJSON{
		Name:       s.name,
		Kind:       s.kind,
		Start:      s.start,
		DurationMs: durationMs(s.duration),
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	if len(s.children) > 0 {
		out.Children = make([]SpanJSON, len(s.children))
		for i, c := range s.children {
			out.Children[i] = c.JSON()
		}
	}
	return out
}

func durationMs(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

// --- context propagation ---

type spanCtxKey struct{}

// ContextWithSpan returns a context carrying the span; requests propagate
// their root span to handlers (and from there into steps and kernels) this
// way.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the context's span, or nil when the request is
// untraced — the nil then short-circuits every downstream Child/Set/End.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}
