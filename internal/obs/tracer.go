package obs

import (
	"sync/atomic"
	"time"
)

// Tracer captures finished request span trees into a bounded ring buffer.
// The ring is lock-light: one atomic add claims a slot, one atomic pointer
// store publishes the tree. Writers never block each other and never block
// readers; readers (/debug/trace) see each slot's most recently published
// tree. The span tree is immutable once its root is ended, and the atomic
// Store/Load pair gives the reader a happens-before edge over the whole tree,
// so no further synchronization is needed.
//
// A nil *Tracer is a valid "tracing off" tracer: Start returns a nil span and
// the entire downstream instrumentation short-circuits.
type Tracer struct {
	ring     []atomic.Pointer[Span]
	next     atomic.Uint64
	captured atomic.Uint64
	dropped  atomic.Uint64 // captures that overwrote an earlier slot occupant
}

// DefaultTraceCapacity is the ring size used when a capacity of 0 is asked
// for: enough recent requests to debug a burst, small enough to be free.
const DefaultTraceCapacity = 256

// NewTracer returns a tracer whose ring holds up to capacity finished
// request traces (oldest overwritten first). capacity <= 0 selects
// DefaultTraceCapacity.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]atomic.Pointer[Span], capacity)}
}

// Start opens a root request span. On a nil tracer it returns nil, and every
// Child/Set/End on the result is a free no-op.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{name: name, kind: KindRequest, start: time.Now(), tracer: t}
}

// capture publishes a finished root span into the ring.
func (t *Tracer) capture(s *Span) {
	slot := (t.next.Add(1) - 1) % uint64(len(t.ring))
	if t.ring[slot].Swap(s) != nil {
		t.dropped.Add(1)
	}
	t.captured.Add(1)
}

// Capacity returns the ring's bound (0 on nil).
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return len(t.ring)
}

// TracerStats summarizes the ring for /metrics and load reports.
type TracerStats struct {
	Capacity int    `json:"capacity"`
	Captured uint64 `json:"captured"`
	Dropped  uint64 `json:"dropped"`
}

// Stats returns capture counters (zero value on nil).
func (t *Tracer) Stats() TracerStats {
	if t == nil {
		return TracerStats{}
	}
	return TracerStats{
		Capacity: len(t.ring),
		Captured: t.captured.Load(),
		Dropped:  t.dropped.Load(),
	}
}

// Snapshot returns the captured traces currently in the ring, newest first,
// at most the ring's capacity. On a nil tracer it returns nil.
func (t *Tracer) Snapshot() []*Span {
	if t == nil {
		return nil
	}
	n := len(t.ring)
	out := make([]*Span, 0, n)
	// Walk backwards from the most recently claimed slot so the result is
	// newest-first. Concurrent captures may race individual slots; each Load
	// still yields either a complete older tree or a complete newer one.
	head := t.next.Load()
	for i := 0; i < n; i++ {
		slot := (head + uint64(n) - 1 - uint64(i)) % uint64(n)
		if s := t.ring[slot].Load(); s != nil {
			out = append(out, s)
		}
	}
	return out
}
