package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestNilTracerIsFree pins the nil fast path: a nil tracer starts nil spans,
// and every downstream operation on them is a no-op that neither panics nor
// allocates.
func TestNilTracerIsFree(t *testing.T) {
	var tr *Tracer
	span := tr.Start("GET /x")
	if span != nil {
		t.Fatalf("nil tracer started a non-nil span: %v", span)
	}
	child := span.Child(KindStep, "step.x")
	if child != nil {
		t.Fatalf("nil span produced a non-nil child")
	}
	child.Set("k", 1)
	child.End()
	span.End()
	if got := tr.Stats(); got != (TracerStats{}) {
		t.Errorf("nil tracer stats = %+v, want zero", got)
	}
	if tr.Snapshot() != nil {
		t.Error("nil tracer snapshot should be nil")
	}

	allocs := testing.AllocsPerRun(100, func() {
		s := tr.Start("GET /x")
		c := s.Child(KindKernel, "table.where")
		c.Set("rows", 100)
		c.End()
		s.End()
	})
	if allocs != 0 {
		t.Errorf("untraced path allocates %v per op, want 0", allocs)
	}
}

// TestSpanTreeCapture builds one request→step→kernel tree and checks the
// captured JSON carries the full structure and annotations.
func TestSpanTreeCapture(t *testing.T) {
	tr := NewTracer(4)
	root := tr.Start("POST /sessions/{id}/steps")
	root.Set("status", 200)
	step := root.Child(KindStep, "step.add_visualization")
	step.Set("p_value", 0.003)
	kernel := step.Child(KindKernel, "cache.where")
	kernel.Set("cache", "miss")
	kernel.End()
	step.End()
	root.End()

	stats := tr.Stats()
	if stats.Captured != 1 || stats.Dropped != 0 || stats.Capacity != 4 {
		t.Fatalf("stats = %+v, want 1 captured, 0 dropped, capacity 4", stats)
	}
	snap := tr.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d traces, want 1", len(snap))
	}
	j := snap[0].JSON()
	if j.Name != "POST /sessions/{id}/steps" || j.Kind != KindRequest || j.DurationMs <= 0 {
		t.Errorf("root JSON = %+v", j)
	}
	if len(j.Children) != 1 || j.Children[0].Name != "step.add_visualization" || j.Children[0].Kind != KindStep {
		t.Fatalf("step child missing: %+v", j.Children)
	}
	k := j.Children[0].Children
	if len(k) != 1 || k[0].Name != "cache.where" || k[0].Kind != KindKernel || k[0].Attrs["cache"] != "miss" {
		t.Fatalf("kernel child missing or unannotated: %+v", k)
	}
}

// TestEndIsIdempotent checks a double End captures exactly once and keeps the
// first duration.
func TestEndIsIdempotent(t *testing.T) {
	tr := NewTracer(2)
	s := tr.Start("GET /x")
	s.End()
	d := s.Duration()
	time.Sleep(time.Millisecond)
	s.End()
	if s.Duration() != d {
		t.Errorf("second End changed the duration: %v -> %v", d, s.Duration())
	}
	if got := tr.Stats().Captured; got != 1 {
		t.Errorf("captured = %d, want 1", got)
	}
}

// TestRingStaysBounded overfills a small ring and checks the capture/drop
// accounting and the snapshot bound: the ring never returns more than its
// capacity, newest first.
func TestRingStaysBounded(t *testing.T) {
	const capacity, total = 4, 11
	tr := NewTracer(capacity)
	for i := 0; i < total; i++ {
		s := tr.Start(fmt.Sprintf("req-%d", i))
		s.End()
	}
	stats := tr.Stats()
	if stats.Captured != total {
		t.Errorf("captured = %d, want %d", stats.Captured, total)
	}
	if stats.Dropped != total-capacity {
		t.Errorf("dropped = %d, want %d", stats.Dropped, total-capacity)
	}
	snap := tr.Snapshot()
	if len(snap) != capacity {
		t.Fatalf("snapshot holds %d traces, want exactly the capacity %d", len(snap), capacity)
	}
	for i, s := range snap {
		if want := fmt.Sprintf("req-%d", total-1-i); s.Name() != want {
			t.Errorf("snapshot[%d] = %q, want %q (newest first)", i, s.Name(), want)
		}
	}
}

// TestConcurrentCapture hammers one ring from many goroutines under -race:
// every capture must be counted, the snapshot stays within capacity, and
// every tree read back is complete (ended root with its child present).
func TestConcurrentCapture(t *testing.T) {
	const workers, perWorker = 8, 200
	tr := NewTracer(16)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s := tr.Start(fmt.Sprintf("w%d", w))
				c := s.Child(KindKernel, "k")
				c.Set("i", i)
				c.End()
				s.End()
				if i%10 == 0 {
					for _, got := range tr.Snapshot() {
						if got.Duration() == 0 {
							t.Error("snapshot returned an unfinished span")
							return
						}
						if j := got.JSON(); len(j.Children) != 1 {
							t.Errorf("captured tree incomplete: %+v", j)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	stats := tr.Stats()
	if stats.Captured != workers*perWorker {
		t.Errorf("captured = %d, want %d", stats.Captured, workers*perWorker)
	}
	if got := len(tr.Snapshot()); got > 16 {
		t.Errorf("snapshot exceeded capacity: %d > 16", got)
	}
}
