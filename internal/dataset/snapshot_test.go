package dataset

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"aware/internal/colstore"
)

// This file is the differential test bed for the storage engine: a table
// round-tripped through the snapshot format — directly (Snapshot →
// OpenSnapshot) and via the full text path (WriteCSV → IngestCSV →
// OpenSnapshot) — must be indistinguishable from the directly-constructed
// in-memory table under every kernel: bitmap-word-identical Where selections
// and identical aggregations, across pool sizes 1, 2 and 8. This is what
// licenses awared to serve mmap'd snapshots with the same engine that serves
// heap tables.

// snapshotVariants returns the table reloaded through each storage path,
// labelled, plus closers.
func snapshotVariants(t *testing.T, mem *Table) map[string]*Table {
	t.Helper()
	dir := t.TempDir()

	direct := filepath.Join(dir, "direct.aware")
	if err := mem.Snapshot(direct); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	mapped, err := OpenSnapshot(direct)
	if err != nil {
		t.Fatalf("OpenSnapshot: %v", err)
	}
	t.Cleanup(func() { mapped.Close() })

	heapStore, err := colstore.OpenFile(direct, colstore.OpenOptions{NoMmap: true})
	if err != nil {
		t.Fatalf("OpenFile(NoMmap): %v", err)
	}
	heap, err := FromStore(heapStore)
	if err != nil {
		t.Fatalf("FromStore: %v", err)
	}

	var buf bytes.Buffer
	if err := mem.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	ingested := filepath.Join(dir, "ingested.aware")
	rows, err := colstore.IngestCSV(&buf, mem.Store().Schema(), ingested)
	if err != nil {
		t.Fatalf("IngestCSV: %v", err)
	}
	if rows != mem.NumRows() {
		t.Fatalf("IngestCSV saw %d rows, table has %d", rows, mem.NumRows())
	}
	viaCSV, err := OpenSnapshot(ingested)
	if err != nil {
		t.Fatalf("OpenSnapshot(ingested): %v", err)
	}
	t.Cleanup(func() { viaCSV.Close() })

	return map[string]*Table{"mmap": mapped, "heap": heap, "csv-ingest": viaCSV}
}

func TestSnapshotDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1701))
	seqPool := NewPool(1)
	defer seqPool.Close()
	pools := []*Pool{NewPool(2), NewPool(8)}
	defer pools[0].Close()
	defer pools[1].Close()

	sizes := []int{1, 63, 64, 65, morselRows + 1, 1 + rng.Intn(200_000)}
	for _, rows := range sizes {
		mem := randomSizedTable(rng, rows)
		variants := snapshotVariants(t, mem)

		for trial := 0; trial < 3; trial++ {
			pred := randomPredicate(rng, 2)
			ctx := fmt.Sprintf("rows=%d trial=%d pred=%s", rows, trial, pred.Describe())

			mem.SetPool(seqPool)
			wantSel, wantErr := mem.Where(pred)
			var wantCounts, wantBins []int
			var wantGroups []GroupCount
			var wantFloats []float64
			if wantErr == nil {
				view := View{table: mem, sel: wantSel}
				wantCounts, _ = view.CountsFor("color", []string{"red", "green", "blue", "violet"})
				wantGroups, _ = view.GroupBy("color")
				wantBins, _ = view.BinCounts("score", 10)
				wantFloats, _ = view.Floats("score")
			}

			for name, loaded := range variants {
				for _, pool := range append(pools, seqPool) {
					loaded.SetPool(pool)
					gotSel, gotErr := loaded.Where(pred)
					lctx := fmt.Sprintf("%s variant=%s workers=%d", ctx, name, pool.Workers())
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("%s: error parity broke: in-memory %v, loaded %v", lctx, wantErr, gotErr)
					}
					if wantErr != nil {
						continue
					}
					sameSelection(t, lctx, wantSel, gotSel)

					view := View{table: loaded, sel: gotSel}
					gotCounts, err := view.CountsFor("color", []string{"red", "green", "blue", "violet"})
					if err != nil || !reflect.DeepEqual(wantCounts, gotCounts) {
						t.Fatalf("%s: CountsFor %v (err %v), want %v", lctx, gotCounts, err, wantCounts)
					}
					gotGroups, err := view.GroupBy("color")
					if err != nil || !reflect.DeepEqual(wantGroups, gotGroups) {
						t.Fatalf("%s: GroupBy %v (err %v), want %v", lctx, gotGroups, err, wantGroups)
					}
					gotBins, err := view.BinCounts("score", 10)
					if err != nil || !reflect.DeepEqual(wantBins, gotBins) {
						t.Fatalf("%s: BinCounts %v (err %v), want %v", lctx, gotBins, err, wantBins)
					}
					gotFloats, err := view.Floats("score")
					if err != nil || !reflect.DeepEqual(wantFloats, gotFloats) {
						t.Fatalf("%s: Floats differ (err %v)", lctx, err)
					}
				}
			}
		}
	}
}

// TestSnapshotTableFacade covers the facade plumbing itself: store metadata
// surfaces through the table, derived tables keep working on loaded data, and
// CSV written from a loaded table matches CSV written from the original.
func TestSnapshotTableFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mem := randomSizedTable(rng, 1000)
	path := filepath.Join(t.TempDir(), "t.aware")
	if err := mem.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()

	if loaded.Store() == nil || loaded.Store().Path() != path {
		t.Fatalf("loaded store path = %v", loaded.Store())
	}
	if mem.Store().Path() != "" || mem.Store().Resident() {
		t.Error("in-memory store claims snapshot provenance")
	}
	if got, want := loaded.ColumnNames(), mem.ColumnNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("columns %v, want %v", got, want)
	}

	var a, b bytes.Buffer
	if err := mem.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := loaded.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("CSV from loaded table differs from original")
	}

	// Derived tables (Select copies rows to fresh heap columns) must work on
	// top of mmap'd storage.
	sub, err := loaded.Select([]int{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumRows() != 3 {
		t.Fatalf("sub has %d rows", sub.NumRows())
	}
	if sub.Store().Resident() {
		t.Error("derived table claims to be mmap-resident")
	}
}
