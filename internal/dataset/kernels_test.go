package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"runtime/debug"
	"sync"
	"testing"

	"math/bits"
)

// This file is the differential test bed for the tuned kernel generation
// (kernels.go) and the selection arena (arena.go). The contract under test:
// for every predicate type, every dictionary width, every row count around
// the word boundaries and up to 200k, and pools 1/2/8, Table.Where (tuned,
// arena-backed) produces a Selection whose bitmap WORDS — not just whose
// indices — are identical to Table.WhereGeneric (the PR-5 kernels) and whose
// rows are identical to the row-at-a-time Matches reference.

// kernelTable builds a table shaped to exercise every kernel
// specialization: a narrow categorical (10 values → the 256-bit In lookup
// table), a wide categorical (up to 300 values → the per-code bitset once
// rows push the dictionary past 256), bools, floats with NaNs sprinkled in
// (comparisons must stay false), and ints beyond 2^53 is not needed — the
// generic kernel converts through float64 and the tuned kernel must match
// that exactly, which the shared conversion guarantees.
func kernelTable(rng *rand.Rand, rows int) *Table {
	cats := make([]string, 10)
	for i := range cats {
		cats[i] = fmt.Sprintf("c%d", i)
	}
	strs := make([]string, rows)
	wide := make([]string, rows)
	bools := make([]bool, rows)
	floats := make([]float64, rows)
	ints := make([]int64, rows)
	for i := 0; i < rows; i++ {
		strs[i] = cats[rng.Intn(len(cats))]
		wide[i] = fmt.Sprintf("w%03d", rng.Intn(300))
		bools[i] = rng.Intn(2) == 0
		if rng.Intn(20) == 0 {
			floats[i] = math.NaN()
		} else {
			floats[i] = math.Round(rng.NormFloat64()*100) / 10
		}
		ints[i] = int64(rng.Intn(40) - 20)
	}
	tab, err := NewTable(
		NewCategoricalColumn("cat", strs),
		NewCategoricalColumn("wide", wide),
		NewBoolColumn("flag", bools),
		NewFloatColumn("score", floats),
		NewIntColumn("level", ints),
	)
	if err != nil {
		panic(err)
	}
	return tab
}

// kernelPredicates is the fixed predicate battery: all seven types, missing
// values, bool columns addressed categorically, empty combinators, NaN-laden
// numeric ranges, and both In dictionary widths.
func kernelPredicates() []Predicate {
	return []Predicate{
		nil,
		Equals{Column: "cat", Value: "c3"},
		Equals{Column: "cat", Value: "absent"},
		Equals{Column: "wide", Value: "w123"},
		Equals{Column: "flag", Value: "true"},
		Equals{Column: "flag", Value: "false"},
		Equals{Column: "flag", Value: "junk"},
		NewIn("cat", "c1", "c4", "c9", "absent"),
		In{Column: "wide", Values: []string{"w000", "w123", "w299", "w777"}},
		NewIn("flag", "true", "false"),
		NewIn("flag", "false"),
		In{Column: "cat", Values: []string{"absent"}},
		Range{Column: "score", Low: -5, High: 5},
		Range{Column: "level", Low: -3, High: 40},
		GreaterThan{Column: "score", Threshold: 0},
		GreaterThan{Column: "level", Threshold: -2},
		Not{Inner: GreaterThan{Column: "score", Threshold: 1}},
		And{Terms: []Predicate{Equals{Column: "cat", Value: "c2"}, Range{Column: "score", Low: -10, High: 10}}},
		And{},
		Or{Terms: []Predicate{
			Equals{Column: "flag", Value: "true"},
			GreaterThan{Column: "level", Threshold: 5},
			Not{Inner: NewIn("cat", "c1", "c2", "c3")},
		}},
		Or{},
	}
}

// requireSameWords fails unless two selections are bitmap-word identical —
// the strongest equality the kernels can be held to (index equality would
// not catch a dirty tail word).
func requireSameWords(t *testing.T, label string, tuned, generic *Selection) {
	t.Helper()
	if tuned.n != generic.n || len(tuned.words) != len(generic.words) {
		t.Fatalf("%s: span mismatch: tuned %d rows/%d words, generic %d rows/%d words",
			label, tuned.n, len(tuned.words), generic.n, len(generic.words))
	}
	if tuned.count != generic.count {
		t.Fatalf("%s: count mismatch: tuned %d, generic %d", label, tuned.count, generic.count)
	}
	for i := range tuned.words {
		if tuned.words[i] != generic.words[i] {
			t.Fatalf("%s: word %d mismatch: tuned %064b generic %064b",
				label, i, tuned.words[i], generic.words[i])
		}
	}
	// Both must hold the zero-tail invariant.
	pop := 0
	for _, w := range tuned.words {
		pop += bits.OnesCount64(w)
	}
	if pop != tuned.count {
		t.Fatalf("%s: cached count %d != popcount %d", label, tuned.count, pop)
	}
}

// TestTunedKernelsBitIdentical is the differential property test of the
// tuned kernels: Where vs WhereGeneric (word-identical) vs Matches
// (row-identical) across row counts spanning 1 to 200k, with pools 1/2/8
// and the table's arena engaged so recycled words are part of what is
// being verified.
func TestTunedKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	sizes := []int{1, 3, 63, 64, 65, 130, 1000, 16384, 16385}
	if !testing.Short() {
		sizes = append(sizes, 200000)
	}
	pools := []*Pool{NewPool(1), NewPool(2), NewPool(8)}
	defer func() {
		for _, p := range pools {
			p.Close()
		}
	}()
	for _, rows := range sizes {
		tab := kernelTable(rng, rows)
		tab.SetArena(NewWordArena(rows))
		// The reference is pool-independent; compute it once per predicate.
		for pi, pred := range kernelPredicates() {
			var wantIdx []int
			if pred == nil {
				for i := 0; i < rows; i++ {
					wantIdx = append(wantIdx, i)
				}
			} else {
				var err error
				wantIdx, err = referenceIndices(tab, pred)
				if err != nil {
					t.Fatalf("rows=%d pred=%d: reference: %v", rows, pi, err)
				}
			}
			for _, p := range pools {
				tab.SetPool(p)
				label := fmt.Sprintf("rows=%d pred=%d workers=%d", rows, pi, p.Workers())
				tuned, err := tab.Where(pred)
				if err != nil {
					t.Fatalf("%s: Where: %v", label, err)
				}
				generic, err := tab.WhereGeneric(pred)
				if err != nil {
					t.Fatalf("%s: WhereGeneric: %v", label, err)
				}
				requireSameWords(t, label, tuned, generic)
				if got := tuned.Indices(); !reflect.DeepEqual(got, wantIdx) && !(len(got) == 0 && len(wantIdx) == 0) {
					t.Fatalf("%s: indices diverge from Matches reference", label)
				}
				// Exercise recycling inside the differential loop: the next
				// predicate's kernels reuse these words.
				tuned.Release()
				generic.Release()
			}
		}
	}
}

// TestTunedKernelErrorParity pins the tuned leaves' error behavior to the
// generic kernels and the reference: same missing-column and type-mismatch
// outcomes on every path.
func TestTunedKernelErrorParity(t *testing.T) {
	tab := kernelTable(rand.New(rand.NewSource(31)), 100)
	bad := []Predicate{
		Equals{Column: "missing", Value: "x"},
		Equals{Column: "score", Value: "x"},
		In{Column: "level", Values: []string{"1"}},
		Range{Column: "cat", Low: 0, High: 1},
		GreaterThan{Column: "flag", Threshold: 0},
		Not{},
	}
	for i, pred := range bad {
		_, tunedErr := tab.Where(pred)
		_, genErr := tab.WhereGeneric(pred)
		if (tunedErr == nil) != (genErr == nil) {
			t.Errorf("pred %d: tuned err %v, generic err %v", i, tunedErr, genErr)
		}
		if pred == (Predicate)(Not{}) {
			// Matches would dereference the nil inner; the compiled paths
			// must reject it instead, which the parity check above covers.
			if tunedErr == nil {
				t.Errorf("pred %d: nil-inner Not compiled without error", i)
			}
			continue
		}
		_, refErr := referenceIndices(tab, pred)
		if (refErr == nil) != (tunedErr == nil) {
			t.Errorf("pred %d: reference err %v, tuned err %v", i, refErr, tunedErr)
		}
	}
}

// TestArenaSteadyStateZeroFresh asserts the arena's whole point: once warm,
// a compile→release loop issues only recycled selections — the fresh
// counter stops moving. GC is disabled around the loop because a collection
// may legitimately drop sync.Pool contents.
func TestArenaSteadyStateZeroFresh(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts by design; zero-fresh cannot hold")
	}
	tab := kernelTable(rand.New(rand.NewSource(37)), 20000)
	arena := NewWordArena(tab.NumRows())
	tab.SetArena(arena)
	pred := And{Terms: []Predicate{
		Equals{Column: "flag", Value: "true"},
		Range{Column: "level", Low: -10, High: 10},
	}}
	run := func() {
		sel, err := tab.Where(pred)
		if err != nil {
			t.Fatal(err)
		}
		sel.Release()
	}
	for i := 0; i < 5; i++ {
		run() // warm the pool
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	before := arena.Stats()
	for i := 0; i < 100; i++ {
		run()
	}
	after := arena.Stats()
	if after.FreshSelections != before.FreshSelections {
		t.Errorf("steady state allocated %d fresh selections, want 0 (stats: %+v)",
			after.FreshSelections-before.FreshSelections, after)
	}
	if after.RecycledSelections <= before.RecycledSelections {
		t.Errorf("steady state recycled nothing (stats: %+v)", after)
	}
}

// TestArenaReleaseSafety covers the release contract edge cases: double
// release no-ops, heap selections no-op, detach makes Release permanent
// no-op, geometry-mismatched tables fall back to the heap.
func TestArenaReleaseSafety(t *testing.T) {
	tab := kernelTable(rand.New(rand.NewSource(41)), 130)
	arena := NewWordArena(tab.NumRows())
	tab.SetArena(arena)

	sel, err := tab.Where(GreaterThan{Column: "score", Threshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	if sel.arena != arena {
		t.Fatal("compiled selection not arena-backed")
	}
	sel.Release()
	sel.Release() // second release must be a no-op
	if got := arena.Stats().ReturnedSelections; got != 1 {
		t.Errorf("returned = %d after double release, want 1", got)
	}

	// Detached selections never return.
	sel2, err := tab.Where(GreaterThan{Column: "score", Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	sel2.detach()
	sel2.Release()
	if got := arena.Stats().ReturnedSelections; got != 1 {
		t.Errorf("returned = %d after detached release, want 1", got)
	}

	// Heap selections tolerate Release, and so does nil.
	FullSelection(10).Release()
	(*Selection)(nil).Release()

	// A table with a different row count ignores a mismatched arena.
	other := kernelTable(rand.New(rand.NewSource(43)), 64)
	other.SetArena(arena)
	sel3, err := other.Where(GreaterThan{Column: "score", Threshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	if sel3.arena != nil {
		t.Error("geometry-mismatched arena leaked into a selection")
	}
}

// TestArenaCachedSelectionsDetached asserts a SelectionCache never hands out
// recyclable bitmaps: a cached selection survives any number of Releases by
// other holders of the same arena.
func TestArenaCachedSelectionsDetached(t *testing.T) {
	tab := kernelTable(rand.New(rand.NewSource(47)), 1000)
	tab.SetArena(NewWordArena(tab.NumRows()))
	cache := NewSelectionCache(tab)
	p := Range{Column: "score", Low: -2, High: 2}
	cached, err := cache.Where(p)
	if err != nil {
		t.Fatal(err)
	}
	if cached.arena != nil {
		t.Fatal("cached selection still arena-backed")
	}
	want := append([]int(nil), cached.Indices()...)
	// Churn the arena hard; if the cached bitmap were recyclable its words
	// would be stolen and zeroed.
	for i := 0; i < 50; i++ {
		sel, err := tab.Where(GreaterThan{Column: "level", Threshold: float64(i%7 - 3)})
		if err != nil {
			t.Fatal(err)
		}
		sel.Release()
	}
	if got := cached.Indices(); !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
		t.Fatal("cached selection mutated by arena churn")
	}
}

// TestArenaConcurrentSessions hammers one arena from 8 goroutines compiling,
// combining and releasing concurrently — the -race configuration of the
// shared-arena contract.
func TestArenaConcurrentSessions(t *testing.T) {
	tab := kernelTable(rand.New(rand.NewSource(53)), 8000)
	arena := NewWordArena(tab.NumRows())
	tab.SetArena(arena)
	preds := kernelPredicates()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				pred := preds[(g*7+i)%len(preds)]
				sel, err := tab.Where(pred)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %w", g, err)
					return
				}
				not := sel.Not()
				if sel.Count()+not.Count() != tab.NumRows() {
					errs <- fmt.Errorf("goroutine %d: count algebra broke: %d + %d != %d",
						g, sel.Count(), not.Count(), tab.NumRows())
					return
				}
				not.Release()
				sel.Release()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := arena.Stats()
	if st.ReturnedSelections == 0 || st.RecycledSelections == 0 {
		t.Errorf("concurrent churn never recycled: %+v", st)
	}
}
