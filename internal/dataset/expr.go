package dataset

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"
)

// This file is the derived-column expression layer: a small arithmetic AST
// (column references, constants, +, -, *, /, and width-bucketing) that
// compiles against a table once and then evaluates morsel-parallel into a
// float vector. Evaluation is lazy — building an Expr does nothing; Derive /
// EvalExpr bind the columns and run the kernel — and intermediate operand
// vectors are morsel-sized scratch buffers drawn from a shared arena
// (sync.Pool), so a deep expression tree allocates no per-row intermediates
// in steady state. Division by zero follows IEEE float semantics (±Inf, NaN).

// Expr is a lazily evaluated arithmetic expression over a table's numeric
// columns, producing one float64 per row.
type Expr interface {
	// Describe returns a human-readable rendering such as "(hours * wage)".
	Describe() string
	isExpr()
}

// Col references a numeric (float64 or int64) column by name.
type Col struct{ Name string }

// Describe implements Expr.
func (e Col) Describe() string { return e.Name }
func (Col) isExpr()            {}

// Const is a numeric literal.
type Const struct{ Value float64 }

// Describe implements Expr.
func (e Const) Describe() string { return trimFloat(e.Value) }
func (Const) isExpr()            {}

// BinaryOp enumerates the arithmetic operators of Binary.
type BinaryOp string

// The four arithmetic operators.
const (
	OpAdd BinaryOp = "add"
	OpSub BinaryOp = "sub"
	OpMul BinaryOp = "mul"
	OpDiv BinaryOp = "div"
)

func (op BinaryOp) symbol() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	default:
		return string(op)
	}
}

// Binary applies an arithmetic operator to two sub-expressions.
type Binary struct {
	Op   BinaryOp
	L, R Expr
}

// Describe implements Expr.
func (e Binary) Describe() string {
	return fmt.Sprintf("(%s %s %s)", e.L.Describe(), e.Op.symbol(), e.R.Describe())
}
func (Binary) isExpr() {}

// Bucket maps its argument to the lower edge of its width-sized bucket:
// floor(v/width)*width. Bucketed derived columns turn continuous attributes
// into group-by-able ones (ages into decades, incomes into 10k bands).
type Bucket struct {
	Arg   Expr
	Width float64
}

// Describe implements Expr.
func (e Bucket) Describe() string {
	return fmt.Sprintf("bucket(%s, %s)", e.Arg.Describe(), trimFloat(e.Width))
}
func (Bucket) isExpr() {}

// --- compilation and evaluation ---

// exprProg is one compiled expression node: columns resolved to their
// physical vectors, ready for morsel evaluation.
type exprProg struct {
	op     string // "colf", "coli", "const", "add", "sub", "mul", "div", "bucket"
	floats []float64
	ints   []int64
	val    float64 // Const value or Bucket width
	l, r   *exprProg
}

// compileExpr validates the expression against the table — every referenced
// column must exist and be numeric, every operator known, bucket widths
// positive and finite — and binds column vectors.
func compileExpr(t *Table, e Expr) (*exprProg, error) {
	switch q := e.(type) {
	case Col:
		c, err := t.Column(q.Name)
		if err != nil {
			return nil, err
		}
		switch c.Type {
		case Float64:
			return &exprProg{op: "colf", floats: c.floats}, nil
		case Int64:
			return &exprProg{op: "coli", ints: c.ints}, nil
		default:
			return nil, fmt.Errorf("%w: %s is %s, not numeric", ErrTypeMismatch, c.Name, c.Type)
		}
	case Const:
		if math.IsNaN(q.Value) || math.IsInf(q.Value, 0) {
			return nil, fmt.Errorf("dataset: expression constant must be finite, got %v", q.Value)
		}
		return &exprProg{op: "const", val: q.Value}, nil
	case Binary:
		switch q.Op {
		case OpAdd, OpSub, OpMul, OpDiv:
		default:
			return nil, fmt.Errorf("dataset: unknown expression operator %q", q.Op)
		}
		if q.L == nil || q.R == nil {
			return nil, fmt.Errorf("dataset: %s expression requires two operands", q.Op)
		}
		l, err := compileExpr(t, q.L)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(t, q.R)
		if err != nil {
			return nil, err
		}
		return &exprProg{op: string(q.Op), l: l, r: r}, nil
	case Bucket:
		if q.Arg == nil {
			return nil, fmt.Errorf("dataset: bucket expression requires an argument")
		}
		if !(q.Width > 0) || math.IsInf(q.Width, 0) {
			return nil, fmt.Errorf("dataset: bucket width must be positive and finite, got %v", q.Width)
		}
		arg, err := compileExpr(t, q.Arg)
		if err != nil {
			return nil, err
		}
		return &exprProg{op: "bucket", val: q.Width, l: arg}, nil
	case nil:
		return nil, fmt.Errorf("dataset: nil expression")
	default:
		return nil, fmt.Errorf("dataset: unknown expression type %T", e)
	}
}

// exprScratch recycles the morsel-sized operand buffers the evaluator uses
// for binary right-hand sides — the expression arena. Buffers are shared
// process-wide across tables and pools; a morsel in flight holds at most its
// tree depth in buffers.
var exprScratch = sync.Pool{
	New: func() any {
		buf := make([]float64, morselRows)
		return &buf
	},
}

// evalInto evaluates the program for rows [lo, lo+len(dst)) into dst.
func (pg *exprProg) evalInto(dst []float64, lo int) {
	switch pg.op {
	case "colf":
		copy(dst, pg.floats[lo:lo+len(dst)])
	case "coli":
		src := pg.ints[lo : lo+len(dst)]
		for i, v := range src {
			dst[i] = float64(v)
		}
	case "const":
		for i := range dst {
			dst[i] = pg.val
		}
	case "bucket":
		pg.l.evalInto(dst, lo)
		w := pg.val
		for i, v := range dst {
			dst[i] = math.Floor(v/w) * w
		}
	default: // add, sub, mul, div
		pg.l.evalInto(dst, lo)
		scratch := exprScratch.Get().(*[]float64)
		rhs := (*scratch)[:len(dst)]
		pg.r.evalInto(rhs, lo)
		switch pg.op {
		case "add":
			for i := range dst {
				dst[i] += rhs[i]
			}
		case "sub":
			for i := range dst {
				dst[i] -= rhs[i]
			}
		case "mul":
			for i := range dst {
				dst[i] *= rhs[i]
			}
		case "div":
			for i := range dst {
				dst[i] /= rhs[i]
			}
		}
		exprScratch.Put(scratch)
	}
}

// EvalExpr evaluates the expression over every row of the table into a fresh
// float vector, morsel-parallel on the table's pool. The output is
// bit-identical whichever pool executes it (each morsel writes a disjoint
// slice of the output).
func (t *Table) EvalExpr(e Expr) ([]float64, error) {
	pg, err := compileExpr(t, e)
	if err != nil {
		return nil, err
	}
	out := make([]float64, t.rows)
	p := t.execPool()
	m := chunks(t.rows, morselRows)
	if m <= 1 || p.workers == 1 {
		p.cutoffHits.Add(1)
		// Still morsel-at-a-time: evalInto's scratch vectors are sized to one
		// morsel, and the chunked walk keeps the working set in cache.
		for i := 0; i < m; i++ {
			lo := i * morselRows
			pg.evalInto(out[lo:min(lo+morselRows, t.rows)], lo)
		}
		return out, nil
	}
	p.Run(m, func(i int) {
		lo := i * morselRows
		pg.evalInto(out[lo:min(lo+morselRows, t.rows)], lo)
	})
	return out, nil
}

// Derive returns a new table extended with a Float64 column named name,
// computed by evaluating the expression over every row. Existing columns are
// shared, not copied, and the result inherits the table's execution pool.
func (t *Table) Derive(name string, e Expr) (*Table, error) {
	vals, err := t.EvalExpr(e)
	if err != nil {
		return nil, err
	}
	return t.WithColumn(NewFloatColumn(name, vals))
}

// --- JSON wire format ---

// Expression JSON mirrors the predicate codec: a tagged union, one object
// shape per node type:
//
//	{"expr": "col", "column": "age"}
//	{"expr": "const", "value": 10}
//	{"expr": "add", "left": {...}, "right": {...}}   (also sub/mul/div)
//	{"expr": "bucket", "arg": {...}, "width": 10}

// exprJSON is the tagged union every Expr encodes to.
type exprJSON struct {
	Expr   string    `json:"expr"`
	Column string    `json:"column,omitempty"`
	Value  *float64  `json:"value,omitempty"`
	Left   *exprJSON `json:"left,omitempty"`
	Right  *exprJSON `json:"right,omitempty"`
	Arg    *exprJSON `json:"arg,omitempty"`
	Width  *float64  `json:"width,omitempty"`
}

// encodeExpr converts an expression to its wire representation.
func encodeExpr(e Expr) (*exprJSON, error) {
	switch q := e.(type) {
	case Col:
		if q.Name == "" {
			return nil, fmt.Errorf("dataset: col expression requires a column name")
		}
		return &exprJSON{Expr: "col", Column: q.Name}, nil
	case Const:
		v := q.Value
		return &exprJSON{Expr: "const", Value: &v}, nil
	case Binary:
		switch q.Op {
		case OpAdd, OpSub, OpMul, OpDiv:
		default:
			return nil, fmt.Errorf("dataset: cannot encode expression operator %q", q.Op)
		}
		if q.L == nil || q.R == nil {
			return nil, fmt.Errorf("dataset: cannot encode %s expression with nil operand", q.Op)
		}
		l, err := encodeExpr(q.L)
		if err != nil {
			return nil, err
		}
		r, err := encodeExpr(q.R)
		if err != nil {
			return nil, err
		}
		return &exprJSON{Expr: string(q.Op), Left: l, Right: r}, nil
	case Bucket:
		if q.Arg == nil {
			return nil, fmt.Errorf("dataset: cannot encode bucket expression with nil argument")
		}
		arg, err := encodeExpr(q.Arg)
		if err != nil {
			return nil, err
		}
		w := q.Width
		return &exprJSON{Expr: "bucket", Arg: arg, Width: &w}, nil
	case nil:
		return nil, fmt.Errorf("dataset: cannot encode nil expression")
	default:
		return nil, fmt.Errorf("dataset: cannot encode expression type %T", e)
	}
}

// decodeExpr converts a wire representation back into an expression.
func decodeExpr(ej *exprJSON) (Expr, error) {
	if ej == nil {
		return nil, fmt.Errorf("dataset: missing expression object")
	}
	switch ej.Expr {
	case "col":
		if ej.Column == "" {
			return nil, fmt.Errorf("dataset: col expression requires a column")
		}
		return Col{Name: ej.Column}, nil
	case "const":
		if ej.Value == nil {
			return nil, fmt.Errorf("dataset: const expression requires a value")
		}
		return Const{Value: *ej.Value}, nil
	case "add", "sub", "mul", "div":
		l, err := decodeExpr(ej.Left)
		if err != nil {
			return nil, fmt.Errorf("dataset: %s expression left operand: %w", ej.Expr, err)
		}
		r, err := decodeExpr(ej.Right)
		if err != nil {
			return nil, fmt.Errorf("dataset: %s expression right operand: %w", ej.Expr, err)
		}
		return Binary{Op: BinaryOp(ej.Expr), L: l, R: r}, nil
	case "bucket":
		arg, err := decodeExpr(ej.Arg)
		if err != nil {
			return nil, fmt.Errorf("dataset: bucket expression argument: %w", err)
		}
		if ej.Width == nil {
			return nil, fmt.Errorf("dataset: bucket expression requires a width")
		}
		return Bucket{Arg: arg, Width: *ej.Width}, nil
	case "":
		return nil, fmt.Errorf("dataset: expression object is missing a type")
	default:
		return nil, fmt.Errorf("dataset: unknown expression type %q", ej.Expr)
	}
}

// MarshalExpr serializes an expression to its JSON wire format.
func MarshalExpr(e Expr) ([]byte, error) {
	enc, err := encodeExpr(e)
	if err != nil {
		return nil, err
	}
	return json.Marshal(enc)
}

// UnmarshalExpr parses the JSON wire format into an expression.
func UnmarshalExpr(data []byte) (Expr, error) {
	var ej exprJSON
	if err := json.Unmarshal(data, &ej); err != nil {
		return nil, fmt.Errorf("dataset: parsing expression JSON: %w", err)
	}
	return decodeExpr(&ej)
}
