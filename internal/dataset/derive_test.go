package dataset

import (
	"errors"
	"testing"
)

func TestWithColumn(t *testing.T) {
	tab := sampleTable(t)
	extra := NewFloatColumn("bonus", []float64{1, 2, 3, 4, 5, 6, 7, 8})
	bigger, err := tab.WithColumn(extra)
	if err != nil {
		t.Fatal(err)
	}
	if bigger.NumColumns() != tab.NumColumns()+1 || !bigger.HasColumn("bonus") {
		t.Errorf("WithColumn shape %d", bigger.NumColumns())
	}
	// Original table is untouched.
	if tab.HasColumn("bonus") {
		t.Error("WithColumn must not mutate the receiver")
	}
	if _, err := tab.WithColumn(nil); err == nil {
		t.Error("nil column should error")
	}
	if _, err := tab.WithColumn(NewFloatColumn("age", []float64{1, 2, 3, 4, 5, 6, 7, 8})); !errors.Is(err, ErrColumnExists) {
		t.Error("duplicate name should error")
	}
	if _, err := tab.WithColumn(NewFloatColumn("short", []float64{1})); !errors.Is(err, ErrLengthMismatch) {
		t.Error("length mismatch should error")
	}
}

func TestBinNumeric(t *testing.T) {
	tab := sampleTable(t)
	binned, err := tab.BinNumeric("age", "age_band", 3)
	if err != nil {
		t.Fatal(err)
	}
	cats, err := binned.Categories("age_band")
	if err != nil {
		t.Fatal(err)
	}
	if len(cats) == 0 || len(cats) > 3 {
		t.Errorf("age bands %v", cats)
	}
	counts, err := binned.ValueCounts("age_band")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != tab.NumRows() {
		t.Errorf("binned counts cover %d rows", total)
	}
	// Derived column can drive the categorical machinery.
	groups, err := binned.GroupBy("age_band")
	if err != nil || len(groups) == 0 {
		t.Errorf("GroupBy on derived column: %v, %v", groups, err)
	}
	if _, err := tab.BinNumeric("age", "bad", 0); err == nil {
		t.Error("zero bins should error")
	}
	if _, err := tab.BinNumeric("gender", "bad", 3); err == nil {
		t.Error("categorical source should error")
	}
	// Constant column still bins.
	constTab, _ := NewTable(NewFloatColumn("x", []float64{5, 5, 5}))
	if _, err := constTab.BinNumeric("x", "xb", 2); err != nil {
		t.Errorf("constant column binning: %v", err)
	}
	empty, _ := NewTable(NewFloatColumn("x", nil))
	if _, err := empty.BinNumeric("x", "xb", 2); !errors.Is(err, ErrEmptyTable) {
		t.Error("empty table should error")
	}
}

func TestQuantileBin(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	tab, err := NewTable(NewFloatColumn("income", vals))
	if err != nil {
		t.Fatal(err)
	}
	binned, err := tab.QuantileBin("income", "income_q", 4)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := binned.ValueCounts("income_q")
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 4 {
		t.Fatalf("quartile bins %v", counts)
	}
	for q, c := range counts {
		if c < 20 || c > 30 {
			t.Errorf("bin %s has %d rows, expected ~25", q, c)
		}
	}
	if _, err := tab.QuantileBin("income", "bad", 0); err == nil {
		t.Error("zero bins should error")
	}
	empty, _ := NewTable(NewFloatColumn("x", nil))
	if _, err := empty.QuantileBin("x", "xb", 2); !errors.Is(err, ErrEmptyTable) {
		t.Error("empty table should error")
	}
}
