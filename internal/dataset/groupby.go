package dataset

import (
	"fmt"

	"aware/internal/stats"
)

// This file is the two-column contingency kernel behind group-by hypotheses:
// CrossCounts tallies the selected rows of a view into a rows×cols matrix
// over the cross product of two attributes' category spaces. Categorical and
// bool columns contribute their full dictionary (zero rows included, so the
// matrix shape is a property of the table, not the selection); numeric
// columns are cut into equal-width bins spanning the full table's range via
// the memoized binAssignments, so a filtered cross-tab shares its axes with
// the population it is compared against. The tally itself is one combined
// code per row (rowCode*cols + colCode) reduced morsel-parallel in morsel
// order — deterministic on any pool.

// maxCrossCells bounds the contingency matrix: two high-cardinality columns
// crossed together would otherwise allocate per-morsel accumulators of
// unbounded width.
const maxCrossCells = 1 << 20

// CrossTab is a contingency table: Counts[i][j] is the number of selected
// rows whose row-attribute takes RowLabels[i] and whose column-attribute
// takes ColLabels[j].
type CrossTab struct {
	RowLabels []string
	ColLabels []string
	Counts    [][]int
}

// axisCodes is one attribute's per-row code extractor plus its label space.
type axisCodes struct {
	labels []string
	at     func(row int) int
}

// crossAxis resolves one attribute of a cross-tab: categorical columns use
// their dictionary codes, bool columns the false/true encoding, numeric
// columns the memoized equal-width bin assignment (bins bins over the full
// table's range, labelled with their edges).
func (t *Table) crossAxis(name string, bins int) (axisCodes, error) {
	c, err := t.Column(name)
	if err != nil {
		return axisCodes{}, err
	}
	switch c.Type {
	case Categorical:
		return axisCodes{labels: c.dict, at: func(row int) int { return int(c.codes[row]) }}, nil
	case Bool:
		return axisCodes{labels: []string{"false", "true"}, at: func(row int) int {
			if c.bools[row] {
				return 1
			}
			return 0
		}}, nil
	case Float64, Int64:
		if bins <= 0 {
			return axisCodes{}, fmt.Errorf("dataset: numeric cross-tab attribute %q requires a positive bin count, got %d", name, bins)
		}
		ba, err := t.binAssignments(name, bins)
		if err != nil {
			return axisCodes{}, err
		}
		labels, err := t.binEdgeLabels(name, bins)
		if err != nil {
			return axisCodes{}, err
		}
		return axisCodes{labels: labels, at: func(row int) int { return int(ba.assign[row]) }}, nil
	default:
		return axisCodes{}, fmt.Errorf("%w: %s is %s", ErrTypeMismatch, c.Name, c.Type)
	}
}

// binEdgeLabels renders the equal-width bin edges of a numeric column as
// "[lo, hi)" labels, matching the edges binAssignments assigns rows by.
func (t *Table) binEdgeLabels(column string, bins int) ([]string, error) {
	all, err := t.Floats(column)
	if err != nil {
		return nil, err
	}
	hist, err := stats.NewHistogram(all, bins)
	if err != nil {
		return nil, err
	}
	labels := make([]string, bins)
	for b := 0; b < bins; b++ {
		labels[b] = fmt.Sprintf("[%s, %s)", trimFloat(hist.Edges[b]), trimFloat(hist.Edges[b+1]))
	}
	return labels, nil
}

// CrossCounts tallies the selected rows into the contingency table of two
// attributes. bins sizes the equal-width binning of numeric attributes
// (categorical and bool attributes ignore it).
func (v View) CrossCounts(rowAttr, colAttr string, bins int) (*CrossTab, error) {
	ra, err := v.table.crossAxis(rowAttr, bins)
	if err != nil {
		return nil, err
	}
	ca, err := v.table.crossAxis(colAttr, bins)
	if err != nil {
		return nil, err
	}
	rw, cw := len(ra.labels), len(ca.labels)
	if rw == 0 || cw == 0 {
		return nil, ErrEmptyTable
	}
	if rw*cw > maxCrossCells {
		return nil, fmt.Errorf("dataset: cross-tab of %q × %q spans %d cells, more than the %d supported", rowAttr, colAttr, rw*cw, maxCrossCells)
	}
	flat := reduceInts(v.table.execPool(), v.sel.n, rw*cw, func(lo, hi int, acc []int) {
		v.sel.forEachIn(lo, hi, func(row int) { acc[ra.at(row)*cw+ca.at(row)]++ })
	})
	counts := make([][]int, rw)
	for i := range counts {
		counts[i] = flat[i*cw : (i+1)*cw]
	}
	return &CrossTab{RowLabels: ra.labels, ColLabels: ca.labels, Counts: counts}, nil
}
