package dataset

import (
	"fmt"
	"math"
	"sort"
	"strconv"
)

// WithColumn returns a new table containing all existing columns plus the
// given one, which must have the same number of rows. Existing columns are
// shared, not copied.
func (t *Table) WithColumn(c *Column) (*Table, error) {
	if c == nil {
		return nil, fmt.Errorf("dataset: nil column")
	}
	if t.HasColumn(c.Name) {
		return nil, fmt.Errorf("%w: %q", ErrColumnExists, c.Name)
	}
	if c.Len() != t.rows {
		return nil, fmt.Errorf("%w: column %q has %d rows, expected %d", ErrLengthMismatch, c.Name, c.Len(), t.rows)
	}
	cols := append(append([]*Column(nil), t.columns...), c)
	nt, err := NewTable(cols...)
	if err != nil {
		return nil, err
	}
	// Extended tables inherit the parent's execution pool, like Select does,
	// so deriving a column never silently unpins a pinned lineage.
	nt.pool.Store(t.pool.Load())
	return nt, nil
}

// BinNumeric derives a categorical column from a numeric one by binning it
// into the given number of equal-width bins; labels look like
// "[18.0, 27.5)". The derived column makes numeric attributes usable with the
// categorical filter predicates and with AWARE's χ²-based default hypotheses.
func (t *Table) BinNumeric(column, newName string, bins int) (*Table, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("dataset: bins must be positive, got %d", bins)
	}
	vals, err := t.Floats(column)
	if err != nil {
		return nil, err
	}
	if len(vals) == 0 {
		return nil, ErrEmptyTable
	}
	min, max, _ := minMax(vals)
	if min == max {
		max = min + 1
	}
	width := (max - min) / float64(bins)
	labels := make([]string, bins)
	for b := 0; b < bins; b++ {
		labels[b] = fmt.Sprintf("[%s, %s)", trimFloat(min+float64(b)*width), trimFloat(min+float64(b+1)*width))
	}
	out := make([]string, len(vals))
	for i, v := range vals {
		idx := int((v - min) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= bins {
			idx = bins - 1
		}
		out[i] = labels[idx]
	}
	return t.WithColumn(NewCategoricalColumn(newName, out))
}

// QuantileBin derives a categorical column by splitting a numeric column at
// its sample quantiles into the given number of (approximately) equally
// populated bins, labelled "q1", "q2", ... Equal-frequency bins are the usual
// choice for skewed attributes such as income.
func (t *Table) QuantileBin(column, newName string, bins int) (*Table, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("dataset: bins must be positive, got %d", bins)
	}
	vals, err := t.Floats(column)
	if err != nil {
		return nil, err
	}
	if len(vals) == 0 {
		return nil, ErrEmptyTable
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	cuts := make([]float64, bins-1)
	for b := 1; b < bins; b++ {
		pos := float64(b) / float64(bins) * float64(len(sorted)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		frac := pos - float64(lo)
		cuts[b-1] = sorted[lo]*(1-frac) + sorted[hi]*frac
	}
	out := make([]string, len(vals))
	for i, v := range vals {
		b := sort.SearchFloat64s(cuts, v)
		// SearchFloat64s returns the number of cut points <= v... adjust so
		// that values exactly equal to a cut fall into the lower bin.
		if b > 0 && v == cuts[b-1] {
			// keep as is: boundary values join the upper bin consistently
		}
		out[i] = "q" + strconv.Itoa(b+1)
	}
	return t.WithColumn(NewCategoricalColumn(newName, out))
}

// minMax is a tiny local helper mirroring stats.MinMax without the import.
func minMax(xs []float64) (min, max float64, ok bool) {
	if len(xs) == 0 {
		return 0, 0, false
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, true
}

// trimFloat formats a float with at most one decimal, dropping trailing ".0".
func trimFloat(v float64) string {
	s := strconv.FormatFloat(v, 'f', 1, 64)
	if len(s) > 2 && s[len(s)-2:] == ".0" {
		return s[:len(s)-2]
	}
	return s
}
