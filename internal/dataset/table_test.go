package dataset

import (
	"errors"
	"math"
	"testing"

	"aware/internal/stats"
)

// sampleTable builds a small census-like table used across the tests.
func sampleTable(t *testing.T) *Table {
	t.Helper()
	gender := NewCategoricalColumn("gender", []string{"male", "female", "male", "female", "male", "female", "male", "female"})
	highSalary := NewBoolColumn("salary_over_50k", []bool{true, false, true, false, true, true, false, false})
	age := NewFloatColumn("age", []float64{25, 32, 47, 51, 38, 29, 60, 44})
	edu := NewCategoricalColumn("education", []string{"hs", "phd", "bachelor", "phd", "master", "hs", "bachelor", "master"})
	income := NewIntColumn("income", []int64{40, 80, 62, 75, 55, 38, 45, 52})
	tab, err := NewTable(gender, highSalary, age, edu, income)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestNewTableValidation(t *testing.T) {
	a := NewFloatColumn("a", []float64{1, 2})
	b := NewFloatColumn("b", []float64{1, 2, 3})
	if _, err := NewTable(a, b); !errors.Is(err, ErrLengthMismatch) {
		t.Error("expected length mismatch error")
	}
	dup := NewFloatColumn("a", []float64{3, 4})
	if _, err := NewTable(a, dup); !errors.Is(err, ErrColumnExists) {
		t.Error("expected duplicate column error")
	}
	if _, err := NewTable(a, nil); err == nil {
		t.Error("expected nil column error")
	}
	empty, err := NewTable()
	if err != nil || empty.NumRows() != 0 || empty.NumColumns() != 0 {
		t.Error("empty table should be valid")
	}
}

func TestTableBasicAccessors(t *testing.T) {
	tab := sampleTable(t)
	if tab.NumRows() != 8 || tab.NumColumns() != 5 {
		t.Fatalf("shape = %d x %d", tab.NumRows(), tab.NumColumns())
	}
	if !tab.HasColumn("age") || tab.HasColumn("missing") {
		t.Error("HasColumn mismatch")
	}
	if _, err := tab.Column("missing"); !errors.Is(err, ErrColumnNotFound) {
		t.Error("expected column-not-found error")
	}
	names := tab.ColumnNames()
	if names[0] != "gender" || names[4] != "income" {
		t.Errorf("column names %v", names)
	}
	if tab.Describe() == "" {
		t.Error("Describe should not be empty")
	}
}

func TestColumnTypedAccess(t *testing.T) {
	tab := sampleTable(t)
	ages, err := tab.Floats("age")
	if err != nil || len(ages) != 8 || ages[0] != 25 {
		t.Fatalf("Floats(age) = %v, %v", ages, err)
	}
	incomes, err := tab.Floats("income")
	if err != nil || incomes[1] != 80 {
		t.Fatalf("Floats(income) = %v, %v", incomes, err)
	}
	if _, err := tab.Floats("gender"); !errors.Is(err, ErrTypeMismatch) {
		t.Error("expected type mismatch for categorical->float")
	}
	genders, err := tab.Strings("gender")
	if err != nil || genders[0] != "male" {
		t.Fatalf("Strings(gender) = %v, %v", genders, err)
	}
	bools, err := tab.Strings("salary_over_50k")
	if err != nil || bools[0] != "true" || bools[1] != "false" {
		t.Fatalf("Strings(bool) = %v, %v", bools, err)
	}
	if _, err := tab.Strings("age"); !errors.Is(err, ErrTypeMismatch) {
		t.Error("expected type mismatch for float->string")
	}
	col, _ := tab.Column("salary_over_50k")
	v, err := col.Bool(0)
	if err != nil || !v {
		t.Errorf("Bool(0) = %v, %v", v, err)
	}
	ageCol, _ := tab.Column("age")
	if _, err := ageCol.Bool(0); !errors.Is(err, ErrTypeMismatch) {
		t.Error("expected type mismatch for float->bool")
	}
	if ColumnType(99).String() == "" || Float64.String() != "float64" {
		t.Error("ColumnType.String mismatch")
	}
}

func TestCategoriesAndCounts(t *testing.T) {
	tab := sampleTable(t)
	cats, err := tab.Categories("education")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"bachelor", "hs", "master", "phd"}
	if len(cats) != len(want) {
		t.Fatalf("categories %v", cats)
	}
	for i := range want {
		if cats[i] != want[i] {
			t.Fatalf("categories %v, want %v", cats, want)
		}
	}
	counts, err := tab.ValueCounts("gender")
	if err != nil || counts["male"] != 4 || counts["female"] != 4 {
		t.Fatalf("ValueCounts = %v, %v", counts, err)
	}
	ordered, err := tab.CountsFor("gender", []string{"female", "male", "other"})
	if err != nil {
		t.Fatal(err)
	}
	if ordered[0] != 4 || ordered[1] != 4 || ordered[2] != 0 {
		t.Fatalf("CountsFor = %v", ordered)
	}
}

func TestSelectAndFilter(t *testing.T) {
	tab := sampleTable(t)
	sub, err := tab.Select([]int{0, 2, 4})
	if err != nil || sub.NumRows() != 3 {
		t.Fatalf("Select: %v, %v", sub, err)
	}
	if _, err := tab.Select([]int{99}); err == nil {
		t.Error("expected out-of-range error")
	}

	males, err := tab.Filter(Equals{Column: "gender", Value: "male"})
	if err != nil || males.NumRows() != 4 {
		t.Fatalf("Filter males: %d, %v", males.NumRows(), err)
	}
	rich, err := tab.Filter(Equals{Column: "salary_over_50k", Value: "true"})
	if err != nil || rich.NumRows() != 4 {
		t.Fatalf("Filter rich: %d, %v", rich.NumRows(), err)
	}
	// Chain: male and high salary.
	chain := And{Terms: []Predicate{
		Equals{Column: "gender", Value: "male"},
		Equals{Column: "salary_over_50k", Value: "true"},
	}}
	both, err := tab.Filter(chain)
	if err != nil || both.NumRows() != 3 {
		t.Fatalf("Filter chain: %d, %v", both.NumRows(), err)
	}
	// Negation (the dashed-line selection of Figure 1C).
	notRich, err := tab.Filter(Not{Inner: Equals{Column: "salary_over_50k", Value: "true"}})
	if err != nil || notRich.NumRows() != 4 {
		t.Fatalf("Filter not rich: %d, %v", notRich.NumRows(), err)
	}
	// Numeric predicates.
	old, err := tab.Filter(GreaterThan{Column: "age", Threshold: 45})
	if err != nil || old.NumRows() != 3 {
		t.Fatalf("Filter old: %d, %v", old.NumRows(), err)
	}
	mid, err := tab.Filter(Range{Column: "age", Low: 30, High: 50})
	if err != nil || mid.NumRows() != 4 {
		t.Fatalf("Filter mid: %d, %v", mid.NumRows(), err)
	}
	// In and Or.
	grad, err := tab.Filter(In{Column: "education", Values: []string{"master", "phd"}})
	if err != nil || grad.NumRows() != 4 {
		t.Fatalf("Filter grad: %d, %v", grad.NumRows(), err)
	}
	either, err := tab.Filter(Or{Terms: []Predicate{
		Equals{Column: "education", Value: "phd"},
		GreaterThan{Column: "age", Threshold: 55},
	}})
	if err != nil || either.NumRows() != 3 {
		t.Fatalf("Filter or: %d, %v", either.NumRows(), err)
	}
	// Nil predicate returns everything.
	all, err := tab.Filter(nil)
	if err != nil || all.NumRows() != tab.NumRows() {
		t.Fatal("nil predicate should match all rows")
	}
	// CountWhere agrees with Filter.
	n, err := tab.CountWhere(chain)
	if err != nil || n != 3 {
		t.Fatalf("CountWhere = %d, %v", n, err)
	}
	nAll, _ := tab.CountWhere(nil)
	if nAll != 8 {
		t.Fatalf("CountWhere(nil) = %d", nAll)
	}
	// Errors propagate.
	if _, err := tab.Filter(Equals{Column: "missing", Value: "x"}); err == nil {
		t.Error("expected missing column error")
	}
	if _, err := tab.CountWhere(GreaterThan{Column: "gender", Threshold: 1}); err == nil {
		t.Error("expected type error")
	}
}

func TestPredicateDescriptions(t *testing.T) {
	cases := []struct {
		pred Predicate
		want string
	}{
		{Equals{"gender", "male"}, "gender = male"},
		{Not{Equals{"gender", "male"}}, "not(gender = male)"},
		// In renders its values sorted, however the predicate was written.
		{In{Column: "education", Values: []string{"phd", "master"}}, "education in {master, phd}"},
		{NewIn("education", "phd", "master"), "education in {master, phd}"},
		{GreaterThan{"age", 45}, "age > 45"},
		{Range{"age", 30, 50}, "age in [30, 50)"},
		{And{}, "true"},
		{Or{}, "false"},
		{And{Terms: []Predicate{Equals{"a", "1"}, Equals{"b", "2"}}}, "a = 1 and b = 2"},
		{Or{Terms: []Predicate{Equals{"a", "1"}, Equals{"b", "2"}}}, "(a = 1 or b = 2)"},
	}
	for _, c := range cases {
		if got := c.pred.Describe(); got != c.want {
			t.Errorf("Describe = %q, want %q", got, c.want)
		}
	}
	// Empty And matches everything, empty Or matches nothing.
	tab := sampleTable(t)
	nAnd, _ := tab.CountWhere(And{})
	nOr, _ := tab.CountWhere(Or{})
	if nAnd != tab.NumRows() || nOr != 0 {
		t.Errorf("empty And/Or counts = %d/%d", nAnd, nOr)
	}
}

func TestGroupByAndMeans(t *testing.T) {
	tab := sampleTable(t)
	groups, err := tab.GroupBy("gender")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || groups[0].Value != "female" || groups[0].Count != 4 {
		t.Fatalf("GroupBy = %v", groups)
	}
	means, err := tab.GroupMeans("gender", "income")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(means["male"]-50.5) > 1e-12 {
		t.Errorf("male mean income = %v", means["male"])
	}
	if math.Abs(means["female"]-61.25) > 1e-12 {
		t.Errorf("female mean income = %v", means["female"])
	}
	if _, err := tab.GroupMeans("gender", "education"); err == nil {
		t.Error("expected error for non-numeric aggregate column")
	}
}

func TestNumericHistogramAndCrosstab(t *testing.T) {
	tab := sampleTable(t)
	h, err := tab.NumericHistogram("age", 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 8 {
		t.Errorf("histogram total = %d", h.Total())
	}
	if _, err := tab.NumericHistogram("gender", 4); err == nil {
		t.Error("expected error for categorical histogram")
	}

	table, rowCats, colCats, err := tab.Crosstab("gender", "salary_over_50k")
	if err != nil {
		t.Fatal(err)
	}
	if len(rowCats) != 2 || len(colCats) != 2 {
		t.Fatalf("crosstab shape %v x %v", rowCats, colCats)
	}
	total := 0
	for _, row := range table {
		for _, c := range row {
			total += c
		}
	}
	if total != tab.NumRows() {
		t.Errorf("crosstab total = %d", total)
	}
	// female x false should be 3 (rows 1,3,7).
	if table[0][0] != 3 {
		t.Errorf("crosstab[female][false] = %d, want 3", table[0][0])
	}
	if _, _, _, err := tab.Crosstab("gender", "age"); err == nil {
		t.Error("expected error for numeric crosstab column")
	}
}

func TestSampleSplitShuffle(t *testing.T) {
	tab := sampleTable(t)
	rng := stats.NewRNG(3)

	half, err := tab.Sample(rng, 0.5)
	if err != nil || half.NumRows() != 4 {
		t.Fatalf("Sample(0.5) = %d rows, %v", half.NumRows(), err)
	}
	tiny, err := tab.Sample(rng, 0.01)
	if err != nil || tiny.NumRows() != 1 {
		t.Fatalf("Sample(0.01) = %d rows, %v", tiny.NumRows(), err)
	}
	full, err := tab.Sample(rng, 1)
	if err != nil || full.NumRows() != 8 {
		t.Fatalf("Sample(1) = %d rows, %v", full.NumRows(), err)
	}
	if _, err := tab.Sample(rng, 0); err == nil {
		t.Error("expected error for fraction 0")
	}
	if _, err := tab.Sample(nil, 0.5); err == nil {
		t.Error("expected error for nil rng")
	}

	explore, validate, err := tab.Split(rng, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if explore.NumRows()+validate.NumRows() != tab.NumRows() {
		t.Errorf("split sizes %d + %d", explore.NumRows(), validate.NumRows())
	}
	if explore.NumRows() != 6 {
		t.Errorf("exploration rows = %d", explore.NumRows())
	}
	if _, _, err := tab.Split(rng, 1.5); err == nil {
		t.Error("expected error for bad fraction")
	}
	if _, _, err := tab.Split(nil, 0.5); err == nil {
		t.Error("expected error for nil rng")
	}

	shuffled, err := tab.Shuffle(rng, "age")
	if err != nil {
		t.Fatal(err)
	}
	if shuffled.NumRows() != tab.NumRows() {
		t.Error("shuffle changed row count")
	}
	origAges, _ := tab.Floats("age")
	newAges, _ := shuffled.Floats("age")
	// Same multiset of values.
	sumOrig, sumNew := 0.0, 0.0
	for i := range origAges {
		sumOrig += origAges[i]
		sumNew += newAges[i]
	}
	if math.Abs(sumOrig-sumNew) > 1e-9 {
		t.Error("shuffle altered values")
	}
	// Untouched columns are shared.
	origGender, _ := tab.Strings("gender")
	newGender, _ := shuffled.Strings("gender")
	for i := range origGender {
		if origGender[i] != newGender[i] {
			t.Error("unshuffled column changed")
		}
	}
	if _, err := tab.Shuffle(rng, "missing"); err == nil {
		t.Error("expected missing column error")
	}
	if _, err := tab.Shuffle(nil, "age"); err == nil {
		t.Error("expected nil rng error")
	}
	all, err := tab.ShuffleAll(rng)
	if err != nil || all.NumRows() != tab.NumRows() {
		t.Fatalf("ShuffleAll: %v", err)
	}
}

func TestSampleOnEmptyTable(t *testing.T) {
	empty, _ := NewTable(NewFloatColumn("x", nil))
	if _, err := empty.Sample(stats.NewRNG(1), 0.5); !errors.Is(err, ErrEmptyTable) {
		t.Error("expected empty table error")
	}
	if _, _, err := empty.Split(stats.NewRNG(1), 0.5); !errors.Is(err, ErrEmptyTable) {
		t.Error("expected empty table error")
	}
}
