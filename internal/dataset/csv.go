package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ColumnSpec describes one column of a CSV file for ReadCSV.
type ColumnSpec struct {
	Name string
	Type ColumnType
}

// WriteCSV serializes the table as CSV with a header row. Float values use
// the shortest representation that round-trips.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.ColumnNames()); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	record := make([]string, len(t.columns))
	for i := 0; i < t.rows; i++ {
		for j, c := range t.columns {
			switch c.Type {
			case Float64:
				record[j] = strconv.FormatFloat(c.floats[i], 'g', -1, 64)
			case Int64:
				record[j] = strconv.FormatInt(c.ints[i], 10)
			case Categorical:
				record[j] = c.dict[c.codes[i]]
			case Bool:
				record[j] = strconv.FormatBool(c.bools[i])
			}
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("dataset: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV stream with a header row into a table. The specs give
// the expected type of each column by name; columns present in the CSV but
// absent from specs are imported as Categorical.
func ReadCSV(r io.Reader, specs []ColumnSpec) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	typeByName := make(map[string]ColumnType, len(specs))
	for _, s := range specs {
		typeByName[s.Name] = s.Type
	}
	types := make([]ColumnType, len(header))
	for i, name := range header {
		if t, ok := typeByName[name]; ok {
			types[i] = t
		} else {
			types[i] = Categorical
		}
	}
	floats := make([][]float64, len(header))
	ints := make([][]int64, len(header))
	strs := make([][]string, len(header))
	bools := make([][]bool, len(header))

	row := 0
	for {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV row %d: %w", row, err)
		}
		if len(record) != len(header) {
			return nil, fmt.Errorf("dataset: CSV row %d has %d fields, expected %d", row, len(record), len(header))
		}
		for i, field := range record {
			switch types[i] {
			case Float64:
				v, err := strconv.ParseFloat(field, 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: row %d column %q: %w", row, header[i], err)
				}
				floats[i] = append(floats[i], v)
			case Int64:
				v, err := strconv.ParseInt(field, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: row %d column %q: %w", row, header[i], err)
				}
				ints[i] = append(ints[i], v)
			case Bool:
				v, err := strconv.ParseBool(field)
				if err != nil {
					return nil, fmt.Errorf("dataset: row %d column %q: %w", row, header[i], err)
				}
				bools[i] = append(bools[i], v)
			default:
				strs[i] = append(strs[i], field)
			}
		}
		row++
	}
	cols := make([]*Column, len(header))
	for i, name := range header {
		switch types[i] {
		case Float64:
			cols[i] = NewFloatColumn(name, floats[i])
		case Int64:
			cols[i] = NewIntColumn(name, ints[i])
		case Bool:
			cols[i] = NewBoolColumn(name, bools[i])
		default:
			cols[i] = NewCategoricalColumn(name, strs[i])
		}
	}
	return NewTable(cols...)
}
