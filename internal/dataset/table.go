// Package dataset provides the columnar data substrate that the AWARE
// reproduction explores: typed columns, filter predicates and filter chains,
// group-by/histogram aggregation, random sampling, hold-out splits, column
// shuffling (for building randomised null datasets) and CSV import/export. It
// is intentionally small — a visualization front-end needs counts, group-bys
// and filtered sub-populations, not a full query engine — but it is the same
// substrate every experiment in the paper runs on.
//
// Since the internal/colstore split, Table is a query facade: the physical
// column vectors (dictionary codes, float/int/bool payloads, dictionaries)
// are owned by a colstore.Store, and the Column fields the kernels scan alias
// the store's slices directly. That makes every table snapshottable
// (Table.Snapshot) and every snapshot servable (OpenSnapshot mmaps the file
// and wraps it in a Table with zero re-parse), without the kernels changing
// at all.
package dataset

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"aware/internal/colstore"
)

// ColumnType enumerates the supported column types.
type ColumnType int

const (
	// Float64 columns hold continuous numeric values.
	Float64 ColumnType = iota
	// Int64 columns hold discrete numeric values.
	Int64
	// Categorical columns hold strings drawn from a (usually small) domain.
	Categorical
	// Bool columns hold binary values.
	Bool
)

// String implements fmt.Stringer.
func (t ColumnType) String() string {
	switch t {
	case Float64:
		return "float64"
	case Int64:
		return "int64"
	case Categorical:
		return "categorical"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("ColumnType(%d)", int(t))
	}
}

// Common errors.
var (
	// ErrColumnNotFound is returned when a named column does not exist.
	ErrColumnNotFound = errors.New("dataset: column not found")
	// ErrColumnExists is returned when adding a column whose name is taken.
	ErrColumnExists = errors.New("dataset: column already exists")
	// ErrLengthMismatch is returned when column lengths disagree.
	ErrLengthMismatch = errors.New("dataset: column length mismatch")
	// ErrTypeMismatch is returned when a column is used with the wrong type.
	ErrTypeMismatch = errors.New("dataset: column type mismatch")
	// ErrEmptyTable is returned when an operation needs at least one row.
	ErrEmptyTable = errors.New("dataset: empty table")
)

// kindOfType maps the dataset-level column type to its colstore kind. The
// numeric values coincide, but the mapping is spelled out so neither
// enumeration silently constrains the other.
func kindOfType(t ColumnType) colstore.Kind {
	switch t {
	case Float64:
		return colstore.Float64
	case Int64:
		return colstore.Int64
	case Categorical:
		return colstore.Categorical
	case Bool:
		return colstore.Bool
	default:
		panic(fmt.Sprintf("dataset: unknown column type %d", int(t)))
	}
}

// typeOfKind inverts kindOfType.
func typeOfKind(k colstore.Kind) ColumnType {
	switch k {
	case colstore.Float64:
		return Float64
	case colstore.Int64:
		return Int64
	case colstore.Categorical:
		return Categorical
	case colstore.Bool:
		return Bool
	default:
		panic(fmt.Sprintf("dataset: unknown column kind %d", int(k)))
	}
}

// Column is a named, typed vector of values: the query-facing view of one
// colstore.Column. The unexported slices alias the physical column's vectors
// (which may in turn alias a read-only mmap'd snapshot), so the vectorized
// predicate kernels in selection.go scan storage-owned memory directly —
// there is no copy between the storage engine and the execution engine.
//
// Categorical columns are dictionary-encoded: dict holds the sorted distinct
// values, codes holds one uint32 per row indexing into dict, and codeOf
// inverts the dictionary. The kernels scan codes instead of comparing
// strings; row-at-a-time string access is a dict lookup, so no per-row string
// payload exists at all. Bool columns need no explicit dictionary — their
// native []bool representation is already the two-code encoding.
type Column struct {
	Name string
	Type ColumnType

	phys *colstore.Column // the storage-engine column the slices below alias

	floats []float64
	ints   []int64
	bools  []bool

	dict   []string          // sorted distinct values (Categorical only)
	codes  []uint32          // per-row index into dict (Categorical only)
	codeOf map[string]uint32 // value -> code (Categorical only)
}

// wrapColumn builds the facade over a physical column.
func wrapColumn(p *colstore.Column) *Column {
	return &Column{
		Name:   p.Name,
		Type:   typeOfKind(p.Kind),
		phys:   p,
		floats: p.Floats,
		ints:   p.Ints,
		bools:  p.Bools,
		dict:   p.Dict,
		codes:  p.Codes,
		codeOf: p.CodeOf,
	}
}

// NewFloatColumn builds a Float64 column.
func NewFloatColumn(name string, values []float64) *Column {
	return wrapColumn(colstore.NewFloatColumn(name, values))
}

// NewIntColumn builds an Int64 column.
func NewIntColumn(name string, values []int64) *Column {
	return wrapColumn(colstore.NewIntColumn(name, values))
}

// NewCategoricalColumn builds a Categorical column, dictionary-encoding the
// values (the input slice is not retained).
func NewCategoricalColumn(name string, values []string) *Column {
	return wrapColumn(colstore.NewCategoricalColumn(name, values))
}

// NewBoolColumn builds a Bool column.
func NewBoolColumn(name string, values []bool) *Column {
	return wrapColumn(colstore.NewBoolColumn(name, values))
}

// Len returns the number of rows in the column.
func (c *Column) Len() int {
	switch c.Type {
	case Float64:
		return len(c.floats)
	case Int64:
		return len(c.ints)
	case Categorical:
		return len(c.codes)
	case Bool:
		return len(c.bools)
	default:
		return 0
	}
}

// Float returns the float value at row i (Float64 and Int64 columns).
func (c *Column) Float(i int) (float64, error) {
	switch c.Type {
	case Float64:
		return c.floats[i], nil
	case Int64:
		return float64(c.ints[i]), nil
	default:
		return math.NaN(), fmt.Errorf("%w: %s is %s, not numeric", ErrTypeMismatch, c.Name, c.Type)
	}
}

// String returns the categorical value at row i. Bool columns stringify to
// "true"/"false"; numeric columns return an error.
func (c *Column) StringAt(i int) (string, error) {
	switch c.Type {
	case Categorical:
		return c.dict[c.codes[i]], nil
	case Bool:
		if c.bools[i] {
			return "true", nil
		}
		return "false", nil
	default:
		return "", fmt.Errorf("%w: %s is %s, not categorical", ErrTypeMismatch, c.Name, c.Type)
	}
}

// Bool returns the boolean value at row i (Bool columns only).
func (c *Column) Bool(i int) (bool, error) {
	if c.Type != Bool {
		return false, fmt.Errorf("%w: %s is %s, not bool", ErrTypeMismatch, c.Name, c.Type)
	}
	return c.bools[i], nil
}

// gather returns a new column containing the rows at the given indices.
func (c *Column) gather(indices []int) *Column {
	phys := &colstore.Column{Name: c.Name, Kind: kindOfType(c.Type)}
	switch c.Type {
	case Float64:
		phys.Floats = make([]float64, len(indices))
		for i, idx := range indices {
			phys.Floats[i] = c.floats[idx]
		}
	case Int64:
		phys.Ints = make([]int64, len(indices))
		for i, idx := range indices {
			phys.Ints[i] = c.ints[idx]
		}
	case Categorical:
		// Share the (immutable) dictionary and gather the codes directly; the
		// gathered column may no longer contain every dictionary value, which
		// is fine — Categories and ValueCounts report only codes that occur.
		phys.Dict = c.dict
		phys.CodeOf = c.codeOf
		phys.Codes = make([]uint32, len(indices))
		for i, idx := range indices {
			phys.Codes[i] = c.codes[idx]
		}
	case Bool:
		phys.Bools = make([]bool, len(indices))
		for i, idx := range indices {
			phys.Bools[i] = c.bools[idx]
		}
	}
	return wrapColumn(phys)
}

// Table is an immutable-by-convention collection of equal-length columns.
//
// The binning cache is the one exception to "immutable": per-row bin
// assignments for numeric columns are computed on first use and memoized
// under binsMu, so repeated histogram requests (every rule-2 hypothesis over
// a numeric target) skip the per-row arithmetic. The cache only ever grows
// and its entries are immutable once stored, so concurrent readers are safe.
type Table struct {
	columns []*Column
	byName  map[string]*Column
	rows    int

	// store owns the physical column vectors the facade columns alias. For
	// tables loaded from a snapshot it also owns the file mapping.
	store *colstore.Store

	binsMu sync.RWMutex
	bins   map[binKey]*binAssignment

	// pool is the execution pool the parallel kernels run on; nil means the
	// process-wide DefaultPool. It is an atomic pointer so SetPool is safe
	// against kernels running concurrently — the pool is an execution hint
	// only, results are bit-identical whichever pool executes them.
	pool atomic.Pointer[Pool]

	// arena, when set (SetArena), recycles the Selection bitmaps the kernels
	// build; nil means plain heap allocation. Like pool it is an execution
	// hint only — see arena.go.
	arena atomic.Pointer[WordArena]
}

// SetPool pins the table's kernels (Where, selection algebra, view
// aggregations) to the given execution pool; nil restores the process-wide
// DefaultPool. Pass NewPool(1) to force fully sequential, single-goroutine
// execution — the deterministic-debugging configuration.
func (t *Table) SetPool(p *Pool) { t.pool.Store(p) }

// execPool resolves the pool the table's kernels execute on.
func (t *Table) execPool() *Pool {
	if p := t.pool.Load(); p != nil {
		return p
	}
	return DefaultPool()
}

// binKey identifies one memoized binning: a numeric column cut into a fixed
// number of equal-width bins spanning the full table's range.
type binKey struct {
	column string
	bins   int
}

// binAssignment is the memoized result: the bin index of every row, computed
// once per (table, column, bin count).
type binAssignment struct {
	assign []int32
	bins   int
}

// NewTable builds a table from columns, which must all have the same length
// and distinct names. The columns' physical vectors are handed to a fresh
// colstore.Store (referenced, never copied), which re-validates the storage
// invariants — dictionary order, code ranges — that the facade relies on.
func NewTable(columns ...*Column) (*Table, error) {
	t := &Table{byName: make(map[string]*Column, len(columns))}
	phys := make([]*colstore.Column, len(columns))
	for i, c := range columns {
		if c == nil {
			return nil, fmt.Errorf("dataset: nil column at position %d", i)
		}
		if _, dup := t.byName[c.Name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrColumnExists, c.Name)
		}
		if i == 0 {
			t.rows = c.Len()
		} else if c.Len() != t.rows {
			return nil, fmt.Errorf("%w: column %q has %d rows, expected %d", ErrLengthMismatch, c.Name, c.Len(), t.rows)
		}
		t.columns = append(t.columns, c)
		t.byName[c.Name] = c
		phys[i] = c.phys
	}
	store, err := colstore.NewStore(phys...)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	t.store = store
	return t, nil
}

// FromStore wraps a colstore.Store — typically one mmap'd from a snapshot —
// in a query facade. The table's columns alias the store's vectors; no data
// is copied, so a multi-gigabyte snapshot is queryable the moment the file is
// mapped.
func FromStore(store *colstore.Store) (*Table, error) {
	if store == nil {
		return nil, errors.New("dataset: FromStore requires a store")
	}
	t := &Table{
		store:  store,
		rows:   store.Rows(),
		byName: make(map[string]*Column, store.NumColumns()),
	}
	for _, p := range store.Columns() {
		c := wrapColumn(p)
		t.columns = append(t.columns, c)
		t.byName[c.Name] = c
	}
	return t, nil
}

// Store returns the storage engine behind the table.
func (t *Table) Store() *colstore.Store { return t.store }

// Snapshot persists the table's store as a columnar snapshot at path
// (atomically: temp file + rename). The snapshot re-opens with OpenSnapshot.
func (t *Table) Snapshot(path string) error { return t.store.WriteSnapshot(path) }

// OpenSnapshot maps a snapshot file written by Snapshot (or the colstore
// ingesters) and wraps it in a Table. On platforms with mmap the table serves
// queries straight from the page cache with zero re-parse; elsewhere the file
// is read into the heap. Close releases the mapping.
func OpenSnapshot(path string) (*Table, error) {
	store, err := colstore.Open(path)
	if err != nil {
		return nil, err
	}
	return FromStore(store)
}

// Close releases the table's snapshot mapping, if any. After Close the
// table's columns are invalid; only call it when no query still runs against
// the table. Heap-backed tables are unaffected and Close is idempotent.
func (t *Table) Close() error { return t.store.Close() }

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return t.rows }

// NumColumns returns the number of columns.
func (t *Table) NumColumns() int { return len(t.columns) }

// ColumnNames returns the column names in declaration order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.columns))
	for i, c := range t.columns {
		names[i] = c.Name
	}
	return names
}

// Column returns the named column.
func (t *Table) Column(name string) (*Column, error) {
	c, ok := t.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrColumnNotFound, name)
	}
	return c, nil
}

// HasColumn reports whether the named column exists.
func (t *Table) HasColumn(name string) bool {
	_, ok := t.byName[name]
	return ok
}

// Select returns a new table restricted to the rows at the given indices.
func (t *Table) Select(indices []int) (*Table, error) {
	for _, idx := range indices {
		if idx < 0 || idx >= t.rows {
			return nil, fmt.Errorf("dataset: row index %d out of range [0, %d)", idx, t.rows)
		}
	}
	cols := make([]*Column, len(t.columns))
	for i, c := range t.columns {
		cols[i] = c.gather(indices)
	}
	sub, err := NewTable(cols...)
	if err != nil {
		return nil, err
	}
	// Derived tables (hold-out halves, samples, materialized views) inherit
	// the parent's execution pool, so pinning a table pins its lineage.
	sub.pool.Store(t.pool.Load())
	return sub, nil
}

// Floats returns the numeric values of the named column (Float64 or Int64).
func (t *Table) Floats(name string) ([]float64, error) {
	c, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	out := make([]float64, c.Len())
	for i := range out {
		v, err := c.Float(i)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Strings returns the categorical (or stringified boolean) values of the
// named column.
func (t *Table) Strings(name string) ([]string, error) {
	c, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	out := make([]string, c.Len())
	for i := range out {
		v, err := c.StringAt(i)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Categories returns the sorted distinct values of a categorical or bool
// column. Categorical columns answer from their dictionary (codes present in
// the column, in dictionary order — the dictionary is sorted, so no extra
// sort is needed); bool columns scan their two-valued payload.
func (t *Table) Categories(name string) ([]string, error) {
	c, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	if c.Type == Categorical {
		present := make([]bool, len(c.dict))
		for _, code := range c.codes {
			present[code] = true
		}
		var cats []string
		for code, ok := range present {
			if ok {
				cats = append(cats, c.dict[code])
			}
		}
		return cats, nil
	}
	vals, err := t.Strings(name)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var cats []string
	for _, v := range vals {
		if !seen[v] {
			seen[v] = true
			cats = append(cats, v)
		}
	}
	sort.Strings(cats)
	return cats, nil
}

// ValueCounts returns the count of each distinct value of a categorical or
// bool column, keyed by value. Categorical columns count codes (one array
// index per row) instead of hashing strings.
func (t *Table) ValueCounts(name string) (map[string]int, error) {
	c, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	if c.Type == Categorical {
		byCode := make([]int, len(c.dict))
		for _, code := range c.codes {
			byCode[code]++
		}
		counts := make(map[string]int)
		for code, n := range byCode {
			if n > 0 {
				counts[c.dict[code]] = n
			}
		}
		return counts, nil
	}
	vals, err := t.Strings(name)
	if err != nil {
		return nil, err
	}
	counts := make(map[string]int)
	for _, v := range vals {
		counts[v]++
	}
	return counts, nil
}

// CountsFor returns the counts of the column's values in the order given by
// categories (values not present count as zero). This is the canonical input
// to the chi-squared tests used by AWARE's default hypotheses.
func (t *Table) CountsFor(name string, categories []string) ([]int, error) {
	counts, err := t.ValueCounts(name)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(categories))
	for i, cat := range categories {
		out[i] = counts[cat]
	}
	return out, nil
}

// Shuffle returns a new table whose named columns have been independently
// permuted using rng, destroying any association between them and the rest of
// the table. Shuffling every column yields the "randomized" dataset of
// Exp. 2 in which every discovery is false by construction. Columns not named
// are shared (not copied).
func (t *Table) Shuffle(rng *rand.Rand, columns ...string) (*Table, error) {
	if rng == nil {
		return nil, errors.New("dataset: Shuffle requires a random source")
	}
	shuffleSet := make(map[string]bool, len(columns))
	for _, name := range columns {
		if !t.HasColumn(name) {
			return nil, fmt.Errorf("%w: %q", ErrColumnNotFound, name)
		}
		shuffleSet[name] = true
	}
	cols := make([]*Column, len(t.columns))
	for i, c := range t.columns {
		if !shuffleSet[c.Name] {
			cols[i] = c
			continue
		}
		perm := rng.Perm(t.rows)
		cols[i] = c.gather(perm)
	}
	shuffled, err := NewTable(cols...)
	if err != nil {
		return nil, err
	}
	shuffled.pool.Store(t.pool.Load())
	return shuffled, nil
}

// ShuffleAll returns a copy of the table with every column independently
// permuted.
func (t *Table) ShuffleAll(rng *rand.Rand) (*Table, error) {
	return t.Shuffle(rng, t.ColumnNames()...)
}

// Sample returns a uniform random sample (without replacement) containing
// fraction*NumRows rows, at least 1 when the table is non-empty.
func (t *Table) Sample(rng *rand.Rand, fraction float64) (*Table, error) {
	if rng == nil {
		return nil, errors.New("dataset: Sample requires a random source")
	}
	if fraction <= 0 || fraction > 1 || math.IsNaN(fraction) {
		return nil, fmt.Errorf("dataset: sample fraction must be in (0, 1], got %v", fraction)
	}
	if t.rows == 0 {
		return nil, ErrEmptyTable
	}
	n := int(math.Round(fraction * float64(t.rows)))
	if n < 1 {
		n = 1
	}
	if n > t.rows {
		n = t.rows
	}
	perm := rng.Perm(t.rows)
	return t.Select(perm[:n])
}

// Split partitions the rows into an exploration set with the given fraction of
// the rows and a validation (hold-out) set with the remainder, as in the
// hold-out discussion of Section 4.1.
func (t *Table) Split(rng *rand.Rand, explorationFraction float64) (exploration, validation *Table, err error) {
	if rng == nil {
		return nil, nil, errors.New("dataset: Split requires a random source")
	}
	if explorationFraction <= 0 || explorationFraction >= 1 || math.IsNaN(explorationFraction) {
		return nil, nil, fmt.Errorf("dataset: exploration fraction must be in (0, 1), got %v", explorationFraction)
	}
	if t.rows < 2 {
		return nil, nil, ErrEmptyTable
	}
	perm := rng.Perm(t.rows)
	cut := int(math.Round(explorationFraction * float64(t.rows)))
	if cut < 1 {
		cut = 1
	}
	if cut >= t.rows {
		cut = t.rows - 1
	}
	exploration, err = t.Select(perm[:cut])
	if err != nil {
		return nil, nil, err
	}
	validation, err = t.Select(perm[cut:])
	if err != nil {
		return nil, nil, err
	}
	return exploration, validation, nil
}
