// Package dataset provides the in-memory columnar data substrate that the
// AWARE reproduction explores: typed columns, filter predicates and filter
// chains, group-by/histogram aggregation, random sampling, hold-out splits,
// column shuffling (for building randomised null datasets) and CSV
// import/export. It is intentionally small — a visualization front-end needs
// counts, group-bys and filtered sub-populations, not a full query engine —
// but it is the same substrate every experiment in the paper runs on.
package dataset

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

// ColumnType enumerates the supported column types.
type ColumnType int

const (
	// Float64 columns hold continuous numeric values.
	Float64 ColumnType = iota
	// Int64 columns hold discrete numeric values.
	Int64
	// Categorical columns hold strings drawn from a (usually small) domain.
	Categorical
	// Bool columns hold binary values.
	Bool
)

// String implements fmt.Stringer.
func (t ColumnType) String() string {
	switch t {
	case Float64:
		return "float64"
	case Int64:
		return "int64"
	case Categorical:
		return "categorical"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("ColumnType(%d)", int(t))
	}
}

// Common errors.
var (
	// ErrColumnNotFound is returned when a named column does not exist.
	ErrColumnNotFound = errors.New("dataset: column not found")
	// ErrColumnExists is returned when adding a column whose name is taken.
	ErrColumnExists = errors.New("dataset: column already exists")
	// ErrLengthMismatch is returned when column lengths disagree.
	ErrLengthMismatch = errors.New("dataset: column length mismatch")
	// ErrTypeMismatch is returned when a column is used with the wrong type.
	ErrTypeMismatch = errors.New("dataset: column type mismatch")
	// ErrEmptyTable is returned when an operation needs at least one row.
	ErrEmptyTable = errors.New("dataset: empty table")
)

// Column is a named, typed vector of values. Exactly one of the value slices
// is populated, matching Type.
//
// Categorical columns are dictionary-encoded at construction: dict holds the
// sorted distinct values, codes holds one uint32 per row indexing into dict,
// and codeOf inverts the dictionary. The vectorized predicate kernels
// (selection.go) scan codes instead of comparing strings, and Categories and
// ValueCounts read the dictionary instead of re-scanning the rows. Bool
// columns need no explicit dictionary — their native []bool representation is
// already the two-code encoding (false = 0, true = 1).
type Column struct {
	Name string
	Type ColumnType

	floats  []float64
	ints    []int64
	strings []string
	bools   []bool

	dict   []string          // sorted distinct values (Categorical only)
	codes  []uint32          // per-row index into dict (Categorical only)
	codeOf map[string]uint32 // value -> code (Categorical only)
}

// NewFloatColumn builds a Float64 column.
func NewFloatColumn(name string, values []float64) *Column {
	return &Column{Name: name, Type: Float64, floats: values}
}

// NewIntColumn builds an Int64 column.
func NewIntColumn(name string, values []int64) *Column {
	return &Column{Name: name, Type: Int64, ints: values}
}

// encodeDictionary builds the column's dictionary encoding: the string
// payload is kept for row-at-a-time access, but every vectorized path
// operates on the uint32 codes built here.
func (c *Column) encodeDictionary() {
	distinct := make(map[string]struct{})
	for _, v := range c.strings {
		distinct[v] = struct{}{}
	}
	c.dict = make([]string, 0, len(distinct))
	for v := range distinct {
		c.dict = append(c.dict, v)
	}
	sort.Strings(c.dict)
	c.codeOf = make(map[string]uint32, len(c.dict))
	for i, v := range c.dict {
		c.codeOf[v] = uint32(i)
	}
	c.codes = make([]uint32, len(c.strings))
	for i, v := range c.strings {
		c.codes[i] = c.codeOf[v]
	}
}

// NewCategoricalColumn builds a Categorical column.
func NewCategoricalColumn(name string, values []string) *Column {
	c := &Column{Name: name, Type: Categorical, strings: values}
	c.encodeDictionary()
	return c
}

// NewBoolColumn builds a Bool column.
func NewBoolColumn(name string, values []bool) *Column {
	return &Column{Name: name, Type: Bool, bools: values}
}

// Len returns the number of rows in the column.
func (c *Column) Len() int {
	switch c.Type {
	case Float64:
		return len(c.floats)
	case Int64:
		return len(c.ints)
	case Categorical:
		return len(c.strings)
	case Bool:
		return len(c.bools)
	default:
		return 0
	}
}

// Float returns the float value at row i (Float64 and Int64 columns).
func (c *Column) Float(i int) (float64, error) {
	switch c.Type {
	case Float64:
		return c.floats[i], nil
	case Int64:
		return float64(c.ints[i]), nil
	default:
		return math.NaN(), fmt.Errorf("%w: %s is %s, not numeric", ErrTypeMismatch, c.Name, c.Type)
	}
}

// String returns the categorical value at row i. Bool columns stringify to
// "true"/"false"; numeric columns return an error.
func (c *Column) StringAt(i int) (string, error) {
	switch c.Type {
	case Categorical:
		return c.strings[i], nil
	case Bool:
		if c.bools[i] {
			return "true", nil
		}
		return "false", nil
	default:
		return "", fmt.Errorf("%w: %s is %s, not categorical", ErrTypeMismatch, c.Name, c.Type)
	}
}

// Bool returns the boolean value at row i (Bool columns only).
func (c *Column) Bool(i int) (bool, error) {
	if c.Type != Bool {
		return false, fmt.Errorf("%w: %s is %s, not bool", ErrTypeMismatch, c.Name, c.Type)
	}
	return c.bools[i], nil
}

// gather returns a new column containing the rows at the given indices.
func (c *Column) gather(indices []int) *Column {
	out := &Column{Name: c.Name, Type: c.Type}
	switch c.Type {
	case Float64:
		out.floats = make([]float64, len(indices))
		for i, idx := range indices {
			out.floats[i] = c.floats[idx]
		}
	case Int64:
		out.ints = make([]int64, len(indices))
		for i, idx := range indices {
			out.ints[i] = c.ints[idx]
		}
	case Categorical:
		out.strings = make([]string, len(indices))
		for i, idx := range indices {
			out.strings[i] = c.strings[idx]
		}
		// Share the (immutable) dictionary and gather the codes directly; the
		// gathered column may no longer contain every dictionary value, which
		// is fine — Categories and ValueCounts report only codes that occur.
		out.dict = c.dict
		out.codeOf = c.codeOf
		out.codes = make([]uint32, len(indices))
		for i, idx := range indices {
			out.codes[i] = c.codes[idx]
		}
	case Bool:
		out.bools = make([]bool, len(indices))
		for i, idx := range indices {
			out.bools[i] = c.bools[idx]
		}
	}
	return out
}

// Table is an immutable-by-convention collection of equal-length columns.
//
// The binning cache is the one exception to "immutable": per-row bin
// assignments for numeric columns are computed on first use and memoized
// under binsMu, so repeated histogram requests (every rule-2 hypothesis over
// a numeric target) skip the per-row arithmetic. The cache only ever grows
// and its entries are immutable once stored, so concurrent readers are safe.
type Table struct {
	columns []*Column
	byName  map[string]*Column
	rows    int

	binsMu sync.RWMutex
	bins   map[binKey]*binAssignment

	// pool is the execution pool the parallel kernels run on; nil means the
	// process-wide DefaultPool. It is an atomic pointer so SetPool is safe
	// against kernels running concurrently — the pool is an execution hint
	// only, results are bit-identical whichever pool executes them.
	pool atomic.Pointer[Pool]
}

// SetPool pins the table's kernels (Where, selection algebra, view
// aggregations) to the given execution pool; nil restores the process-wide
// DefaultPool. Pass NewPool(1) to force fully sequential, single-goroutine
// execution — the deterministic-debugging configuration.
func (t *Table) SetPool(p *Pool) { t.pool.Store(p) }

// execPool resolves the pool the table's kernels execute on.
func (t *Table) execPool() *Pool {
	if p := t.pool.Load(); p != nil {
		return p
	}
	return DefaultPool()
}

// binKey identifies one memoized binning: a numeric column cut into a fixed
// number of equal-width bins spanning the full table's range.
type binKey struct {
	column string
	bins   int
}

// binAssignment is the memoized result: the bin index of every row, computed
// once per (table, column, bin count).
type binAssignment struct {
	assign []int32
	bins   int
}

// NewTable builds a table from columns, which must all have the same length
// and distinct names.
func NewTable(columns ...*Column) (*Table, error) {
	t := &Table{byName: make(map[string]*Column, len(columns))}
	for i, c := range columns {
		if c == nil {
			return nil, fmt.Errorf("dataset: nil column at position %d", i)
		}
		if _, dup := t.byName[c.Name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrColumnExists, c.Name)
		}
		if i == 0 {
			t.rows = c.Len()
		} else if c.Len() != t.rows {
			return nil, fmt.Errorf("%w: column %q has %d rows, expected %d", ErrLengthMismatch, c.Name, c.Len(), t.rows)
		}
		t.columns = append(t.columns, c)
		t.byName[c.Name] = c
	}
	return t, nil
}

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return t.rows }

// NumColumns returns the number of columns.
func (t *Table) NumColumns() int { return len(t.columns) }

// ColumnNames returns the column names in declaration order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.columns))
	for i, c := range t.columns {
		names[i] = c.Name
	}
	return names
}

// Column returns the named column.
func (t *Table) Column(name string) (*Column, error) {
	c, ok := t.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrColumnNotFound, name)
	}
	return c, nil
}

// HasColumn reports whether the named column exists.
func (t *Table) HasColumn(name string) bool {
	_, ok := t.byName[name]
	return ok
}

// Select returns a new table restricted to the rows at the given indices.
func (t *Table) Select(indices []int) (*Table, error) {
	for _, idx := range indices {
		if idx < 0 || idx >= t.rows {
			return nil, fmt.Errorf("dataset: row index %d out of range [0, %d)", idx, t.rows)
		}
	}
	cols := make([]*Column, len(t.columns))
	for i, c := range t.columns {
		cols[i] = c.gather(indices)
	}
	sub, err := NewTable(cols...)
	if err != nil {
		return nil, err
	}
	// Derived tables (hold-out halves, samples, materialized views) inherit
	// the parent's execution pool, so pinning a table pins its lineage.
	sub.pool.Store(t.pool.Load())
	return sub, nil
}

// Floats returns the numeric values of the named column (Float64 or Int64).
func (t *Table) Floats(name string) ([]float64, error) {
	c, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	out := make([]float64, c.Len())
	for i := range out {
		v, err := c.Float(i)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Strings returns the categorical (or stringified boolean) values of the
// named column.
func (t *Table) Strings(name string) ([]string, error) {
	c, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	out := make([]string, c.Len())
	for i := range out {
		v, err := c.StringAt(i)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Categories returns the sorted distinct values of a categorical or bool
// column. Categorical columns answer from their dictionary (codes present in
// the column, in dictionary order — the dictionary is sorted, so no extra
// sort is needed); bool columns scan their two-valued payload.
func (t *Table) Categories(name string) ([]string, error) {
	c, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	if c.Type == Categorical {
		present := make([]bool, len(c.dict))
		for _, code := range c.codes {
			present[code] = true
		}
		var cats []string
		for code, ok := range present {
			if ok {
				cats = append(cats, c.dict[code])
			}
		}
		return cats, nil
	}
	vals, err := t.Strings(name)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var cats []string
	for _, v := range vals {
		if !seen[v] {
			seen[v] = true
			cats = append(cats, v)
		}
	}
	sort.Strings(cats)
	return cats, nil
}

// ValueCounts returns the count of each distinct value of a categorical or
// bool column, keyed by value. Categorical columns count codes (one array
// index per row) instead of hashing strings.
func (t *Table) ValueCounts(name string) (map[string]int, error) {
	c, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	if c.Type == Categorical {
		byCode := make([]int, len(c.dict))
		for _, code := range c.codes {
			byCode[code]++
		}
		counts := make(map[string]int)
		for code, n := range byCode {
			if n > 0 {
				counts[c.dict[code]] = n
			}
		}
		return counts, nil
	}
	vals, err := t.Strings(name)
	if err != nil {
		return nil, err
	}
	counts := make(map[string]int)
	for _, v := range vals {
		counts[v]++
	}
	return counts, nil
}

// CountsFor returns the counts of the column's values in the order given by
// categories (values not present count as zero). This is the canonical input
// to the chi-squared tests used by AWARE's default hypotheses.
func (t *Table) CountsFor(name string, categories []string) ([]int, error) {
	counts, err := t.ValueCounts(name)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(categories))
	for i, cat := range categories {
		out[i] = counts[cat]
	}
	return out, nil
}

// Shuffle returns a new table whose named columns have been independently
// permuted using rng, destroying any association between them and the rest of
// the table. Shuffling every column yields the "randomized" dataset of
// Exp. 2 in which every discovery is false by construction. Columns not named
// are shared (not copied).
func (t *Table) Shuffle(rng *rand.Rand, columns ...string) (*Table, error) {
	if rng == nil {
		return nil, errors.New("dataset: Shuffle requires a random source")
	}
	shuffleSet := make(map[string]bool, len(columns))
	for _, name := range columns {
		if !t.HasColumn(name) {
			return nil, fmt.Errorf("%w: %q", ErrColumnNotFound, name)
		}
		shuffleSet[name] = true
	}
	cols := make([]*Column, len(t.columns))
	for i, c := range t.columns {
		if !shuffleSet[c.Name] {
			cols[i] = c
			continue
		}
		perm := rng.Perm(t.rows)
		cols[i] = c.gather(perm)
	}
	shuffled, err := NewTable(cols...)
	if err != nil {
		return nil, err
	}
	shuffled.pool.Store(t.pool.Load())
	return shuffled, nil
}

// ShuffleAll returns a copy of the table with every column independently
// permuted.
func (t *Table) ShuffleAll(rng *rand.Rand) (*Table, error) {
	return t.Shuffle(rng, t.ColumnNames()...)
}

// Sample returns a uniform random sample (without replacement) containing
// fraction*NumRows rows, at least 1 when the table is non-empty.
func (t *Table) Sample(rng *rand.Rand, fraction float64) (*Table, error) {
	if rng == nil {
		return nil, errors.New("dataset: Sample requires a random source")
	}
	if fraction <= 0 || fraction > 1 || math.IsNaN(fraction) {
		return nil, fmt.Errorf("dataset: sample fraction must be in (0, 1], got %v", fraction)
	}
	if t.rows == 0 {
		return nil, ErrEmptyTable
	}
	n := int(math.Round(fraction * float64(t.rows)))
	if n < 1 {
		n = 1
	}
	if n > t.rows {
		n = t.rows
	}
	perm := rng.Perm(t.rows)
	return t.Select(perm[:n])
}

// Split partitions the rows into an exploration set with the given fraction of
// the rows and a validation (hold-out) set with the remainder, as in the
// hold-out discussion of Section 4.1.
func (t *Table) Split(rng *rand.Rand, explorationFraction float64) (exploration, validation *Table, err error) {
	if rng == nil {
		return nil, nil, errors.New("dataset: Split requires a random source")
	}
	if explorationFraction <= 0 || explorationFraction >= 1 || math.IsNaN(explorationFraction) {
		return nil, nil, fmt.Errorf("dataset: exploration fraction must be in (0, 1), got %v", explorationFraction)
	}
	if t.rows < 2 {
		return nil, nil, ErrEmptyTable
	}
	perm := rng.Perm(t.rows)
	cut := int(math.Round(explorationFraction * float64(t.rows)))
	if cut < 1 {
		cut = 1
	}
	if cut >= t.rows {
		cut = t.rows - 1
	}
	exploration, err = t.Select(perm[:cut])
	if err != nil {
		return nil, nil, err
	}
	validation, err = t.Select(perm[cut:])
	if err != nil {
		return nil, nil, err
	}
	return exploration, validation, nil
}
