package dataset

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
)

// Predicate JSON wire format. Every exported predicate type maps to a tagged
// object so that remote clients (cmd/awared's HTTP API) can express arbitrary
// filter chains:
//
//	{"type": "equals", "column": "gender", "value": "Female"}
//	{"type": "in", "column": "education", "values": ["Master", "PhD"]}
//	{"type": "range", "column": "age", "low": 30, "high": 40}
//	{"type": "gt", "column": "hours_per_week", "threshold": 45}
//	{"type": "not", "term": {...}}
//	{"type": "and", "terms": [{...}, {...}]}
//	{"type": "or", "terms": [{...}, {...}]}
//
// Open-ended ranges use the strings "-inf"/"+inf" for Low/High, since JSON
// numbers cannot represent infinities.

// boundFloat is a float64 that encodes ±Inf as the strings "-inf"/"+inf" so
// that open-ended Range bounds survive the trip through JSON.
type boundFloat float64

// MarshalJSON implements json.Marshaler.
func (f boundFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-inf"`), nil
	case math.IsNaN(v):
		return nil, fmt.Errorf("dataset: NaN is not a valid predicate bound")
	default:
		return []byte(strconv.FormatFloat(v, 'g', -1, 64)), nil
	}
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *boundFloat) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"+inf"`, `"inf"`, `"Inf"`, `"+Inf"`:
		*f = boundFloat(math.Inf(1))
		return nil
	case `"-inf"`, `"-Inf"`:
		*f = boundFloat(math.Inf(-1))
		return nil
	}
	var v float64
	if err := json.Unmarshal(data, &v); err != nil {
		return fmt.Errorf("dataset: predicate bound %s: %w", data, err)
	}
	*f = boundFloat(v)
	return nil
}

// predicateJSON is the tagged union each predicate encodes to. Exactly the
// fields relevant to Type are populated.
type predicateJSON struct {
	Type      string           `json:"type"`
	Column    string           `json:"column,omitempty"`
	Value     string           `json:"value,omitempty"`
	Values    []string         `json:"values,omitempty"`
	Low       *boundFloat      `json:"low,omitempty"`
	High      *boundFloat      `json:"high,omitempty"`
	Threshold *boundFloat      `json:"threshold,omitempty"`
	Term      *predicateJSON   `json:"term,omitempty"`
	Terms     []*predicateJSON `json:"terms,omitempty"`
}

func bound(v float64) *boundFloat {
	b := boundFloat(v)
	return &b
}

// encodePredicate converts a predicate into its wire representation.
func encodePredicate(p Predicate) (*predicateJSON, error) {
	switch q := p.(type) {
	case Equals:
		return &predicateJSON{Type: "equals", Column: q.Column, Value: q.Value}, nil
	case In:
		// Values encode sorted, so semantically equal In predicates (the same
		// value set in any order) serialize — and therefore cache — equal.
		return &predicateJSON{Type: "in", Column: q.Column, Values: sortedStrings(q.Values)}, nil
	case Range:
		return &predicateJSON{Type: "range", Column: q.Column, Low: bound(q.Low), High: bound(q.High)}, nil
	case GreaterThan:
		return &predicateJSON{Type: "gt", Column: q.Column, Threshold: bound(q.Threshold)}, nil
	case Not:
		if q.Inner == nil {
			return nil, fmt.Errorf("dataset: cannot encode Not with nil inner predicate")
		}
		inner, err := encodePredicate(q.Inner)
		if err != nil {
			return nil, err
		}
		return &predicateJSON{Type: "not", Term: inner}, nil
	case And:
		terms, err := encodeTerms(q.Terms)
		if err != nil {
			return nil, err
		}
		return &predicateJSON{Type: "and", Terms: terms}, nil
	case Or:
		terms, err := encodeTerms(q.Terms)
		if err != nil {
			return nil, err
		}
		return &predicateJSON{Type: "or", Terms: terms}, nil
	case nil:
		return nil, fmt.Errorf("dataset: cannot encode nil predicate")
	default:
		return nil, fmt.Errorf("dataset: cannot encode predicate type %T", p)
	}
}

func encodeTerms(terms []Predicate) ([]*predicateJSON, error) {
	if len(terms) == 0 {
		return nil, nil
	}
	out := make([]*predicateJSON, len(terms))
	for i, t := range terms {
		enc, err := encodePredicate(t)
		if err != nil {
			return nil, err
		}
		out[i] = enc
	}
	return out, nil
}

// decodePredicate converts a wire representation back into a predicate.
func decodePredicate(pj *predicateJSON) (Predicate, error) {
	if pj == nil {
		return nil, fmt.Errorf("dataset: missing predicate object")
	}
	switch pj.Type {
	case "equals":
		if pj.Column == "" {
			return nil, fmt.Errorf("dataset: equals predicate requires a column")
		}
		return Equals{Column: pj.Column, Value: pj.Value}, nil
	case "in":
		if pj.Column == "" {
			return nil, fmt.Errorf("dataset: in predicate requires a column")
		}
		return NewIn(pj.Column, pj.Values...), nil
	case "range":
		if pj.Column == "" {
			return nil, fmt.Errorf("dataset: range predicate requires a column")
		}
		r := Range{Column: pj.Column, Low: math.Inf(-1), High: math.Inf(1)}
		if pj.Low != nil {
			r.Low = float64(*pj.Low)
		}
		if pj.High != nil {
			r.High = float64(*pj.High)
		}
		return r, nil
	case "gt":
		if pj.Column == "" {
			return nil, fmt.Errorf("dataset: gt predicate requires a column")
		}
		if pj.Threshold == nil {
			return nil, fmt.Errorf("dataset: gt predicate requires a threshold")
		}
		return GreaterThan{Column: pj.Column, Threshold: float64(*pj.Threshold)}, nil
	case "not":
		inner, err := decodePredicate(pj.Term)
		if err != nil {
			return nil, fmt.Errorf("dataset: not predicate: %w", err)
		}
		return Not{Inner: inner}, nil
	case "and":
		terms, err := decodeTerms(pj.Terms)
		if err != nil {
			return nil, fmt.Errorf("dataset: and predicate: %w", err)
		}
		return And{Terms: terms}, nil
	case "or":
		terms, err := decodeTerms(pj.Terms)
		if err != nil {
			return nil, fmt.Errorf("dataset: or predicate: %w", err)
		}
		return Or{Terms: terms}, nil
	case "":
		return nil, fmt.Errorf("dataset: predicate object is missing a type")
	default:
		return nil, fmt.Errorf("dataset: unknown predicate type %q", pj.Type)
	}
}

func decodeTerms(terms []*predicateJSON) ([]Predicate, error) {
	if len(terms) == 0 {
		return nil, nil
	}
	out := make([]Predicate, len(terms))
	for i, t := range terms {
		dec, err := decodePredicate(t)
		if err != nil {
			return nil, err
		}
		out[i] = dec
	}
	return out, nil
}

// MarshalPredicate serializes a predicate to its JSON wire format.
func MarshalPredicate(p Predicate) ([]byte, error) {
	enc, err := encodePredicate(p)
	if err != nil {
		return nil, err
	}
	return json.Marshal(enc)
}

// UnmarshalPredicate parses the JSON wire format into a predicate.
func UnmarshalPredicate(data []byte) (Predicate, error) {
	var pj predicateJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return nil, fmt.Errorf("dataset: parsing predicate JSON: %w", err)
	}
	return decodePredicate(&pj)
}

// CanonicalPredicateKey returns a canonical string key for the predicate: its
// JSON wire form with In values sorted and And/Or terms recursively sorted by
// their own canonical serialization, so semantically equal predicates — In
// sets written in any order, conjunctions and disjunctions with reordered
// terms — produce equal keys. It is the cache key of SelectionCache (the wire
// format produced by MarshalPredicate keeps the author's term order; only the
// key sorts). The canonical key of And{t1..tn} is exactly the and wire object
// over the terms' canonical keys in ascending order, which is what lets the
// subsumption probe in SelectionCache rebuild prefix keys by concatenation.
func CanonicalPredicateKey(p Predicate) (string, error) {
	enc, err := encodePredicate(p)
	if err != nil {
		return "", err
	}
	if err := canonicalizeTermOrder(enc); err != nil {
		return "", err
	}
	data, err := json.Marshal(enc)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// canonicalizeTermOrder recursively sorts the Terms of every and/or node by
// the terms' (already canonicalized) serializations, making the key of a
// conjunction independent of the order its terms were written in.
func canonicalizeTermOrder(pj *predicateJSON) error {
	if pj == nil {
		return nil
	}
	if pj.Term != nil {
		if err := canonicalizeTermOrder(pj.Term); err != nil {
			return err
		}
	}
	if len(pj.Terms) == 0 {
		return nil
	}
	keys := make([]string, len(pj.Terms))
	for i, t := range pj.Terms {
		if err := canonicalizeTermOrder(t); err != nil {
			return err
		}
		data, err := json.Marshal(t)
		if err != nil {
			return err
		}
		keys[i] = string(data)
	}
	sort.Sort(&termsByKey{keys: keys, terms: pj.Terms})
	return nil
}

// termsByKey sorts a term slice and its serialization keys in lockstep.
type termsByKey struct {
	keys  []string
	terms []*predicateJSON
}

func (s *termsByKey) Len() int           { return len(s.keys) }
func (s *termsByKey) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *termsByKey) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.terms[i], s.terms[j] = s.terms[j], s.terms[i]
}
