package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// This file is the differential test bed for the vectorized execution path:
// for randomized tables and randomized predicate trees covering all seven
// predicate types over every column type, the bitmap kernels (Table.Where)
// and the zero-copy View reads must agree exactly with the row-at-a-time
// reference implementation (Predicate.Matches) and with reads over a
// materialized sub-table.

// randomTable builds a table with one column of every type. Row counts hover
// around the 64-bit word boundary so the bitmap tail masking is exercised.
func randomTable(rng *rand.Rand) *Table {
	rows := 1 + rng.Intn(130) // 1..130 spans 1- and 3-word bitmaps
	cats := []string{"red", "green", "blue", "violet"}
	strs := make([]string, rows)
	bools := make([]bool, rows)
	floats := make([]float64, rows)
	ints := make([]int64, rows)
	for i := 0; i < rows; i++ {
		strs[i] = cats[rng.Intn(len(cats))]
		bools[i] = rng.Intn(2) == 0
		floats[i] = math.Round(rng.NormFloat64()*100) / 10
		ints[i] = int64(rng.Intn(40) - 20)
	}
	tab, err := NewTable(
		NewCategoricalColumn("color", strs),
		NewBoolColumn("flag", bools),
		NewFloatColumn("score", floats),
		NewIntColumn("level", ints),
	)
	if err != nil {
		panic(err)
	}
	return tab
}

// randomPredicate draws a predicate tree of bounded depth. Leaves sometimes
// reference values absent from the table, and occasionally mistype a column
// so that the error paths are compared too.
func randomPredicate(rng *rand.Rand, depth int) Predicate {
	catValues := []string{"red", "green", "blue", "violet", "absent"}
	catCols := []string{"color", "flag"}
	numCols := []string{"score", "level"}
	// Occasionally cross the types to exercise error parity.
	if rng.Intn(20) == 0 {
		catCols, numCols = numCols, catCols
	}
	leaf := func() Predicate {
		switch rng.Intn(4) {
		case 0:
			vals := []string{"true", "false", catValues[rng.Intn(len(catValues))]}
			return Equals{Column: catCols[rng.Intn(len(catCols))], Value: vals[rng.Intn(len(vals))]}
		case 1:
			n := 1 + rng.Intn(3)
			vals := make([]string, n)
			for i := range vals {
				vals[i] = append(catValues, "true", "false")[rng.Intn(len(catValues)+2)]
			}
			if rng.Intn(2) == 0 {
				return NewIn(catCols[rng.Intn(len(catCols))], vals...)
			}
			return In{Column: catCols[rng.Intn(len(catCols))], Values: vals}
		case 2:
			lo := rng.NormFloat64() * 8
			return Range{Column: numCols[rng.Intn(len(numCols))], Low: lo, High: lo + rng.Float64()*15}
		default:
			return GreaterThan{Column: numCols[rng.Intn(len(numCols))], Threshold: rng.NormFloat64() * 8}
		}
	}
	if depth <= 0 {
		return leaf()
	}
	switch rng.Intn(6) {
	case 0:
		return Not{Inner: randomPredicate(rng, depth-1)}
	case 1, 2:
		n := rng.Intn(3)
		terms := make([]Predicate, n)
		for i := range terms {
			terms[i] = randomPredicate(rng, depth-1)
		}
		return And{Terms: terms}
	case 3:
		n := rng.Intn(3)
		terms := make([]Predicate, n)
		for i := range terms {
			terms[i] = randomPredicate(rng, depth-1)
		}
		return Or{Terms: terms}
	default:
		return leaf()
	}
}

// referenceIndices evaluates the predicate row by row with Matches — the
// reference implementation the kernels are checked against.
func referenceIndices(t *Table, p Predicate) ([]int, error) {
	var out []int
	for i := 0; i < t.NumRows(); i++ {
		ok, err := p.Matches(t, i)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, i)
		}
	}
	return out, nil
}

// legacyBinCounts replicates the pre-vectorization numeric binning (the old
// core.referenceCounts arithmetic) over an explicit value slice.
func legacyBinCounts(all, vals []float64, bins int) []int {
	min, max := all[0], all[0]
	for _, v := range all[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min == max {
		max = min + 1
	}
	hw := (max - min) / float64(bins)
	lo := min
	hi := min + float64(bins)*hw
	counts := make([]int, bins)
	width := (hi - lo) / float64(bins)
	if width <= 0 {
		counts[0] = len(vals)
		return counts
	}
	for _, v := range vals {
		idx := int((v - lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= bins {
			idx = bins - 1
		}
		counts[idx]++
	}
	return counts
}

func TestVectorizedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 400; trial++ {
		tab := randomTable(rng)
		pred := randomPredicate(rng, 2+rng.Intn(2))
		label := fmt.Sprintf("trial %d (%d rows): %s", trial, tab.NumRows(), pred.Describe())

		wantIdx, wantErr := referenceIndices(tab, pred)
		sel, gotErr := tab.Where(pred)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: error mismatch: reference %v, vectorized %v", label, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if got := sel.Indices(); !reflect.DeepEqual(got, wantIdx) && !(len(got) == 0 && len(wantIdx) == 0) {
			t.Fatalf("%s: indices mismatch:\n  reference  %v\n  vectorized %v", label, wantIdx, got)
		}
		if sel.Count() != len(wantIdx) {
			t.Fatalf("%s: Count = %d, reference %d", label, sel.Count(), len(wantIdx))
		}

		// The zero-copy view must read exactly what the materialized
		// sub-table reads.
		view, err := tab.View(pred)
		if err != nil {
			t.Fatalf("%s: View: %v", label, err)
		}
		sub, err := tab.Select(wantIdx)
		if err != nil {
			t.Fatalf("%s: Select: %v", label, err)
		}
		for _, col := range []string{"color", "flag"} {
			cats, err := tab.Categories(col)
			if err != nil {
				t.Fatal(err)
			}
			wantCounts, err := sub.CountsFor(col, cats)
			if err != nil {
				t.Fatal(err)
			}
			gotCounts, err := view.CountsFor(col, cats)
			if err != nil {
				t.Fatalf("%s: view CountsFor(%s): %v", label, col, err)
			}
			if !reflect.DeepEqual(gotCounts, wantCounts) {
				t.Fatalf("%s: CountsFor(%s) mismatch:\n  reference  %v\n  vectorized %v", label, col, wantCounts, gotCounts)
			}
			wantGroups, err := sub.GroupBy(col)
			if err != nil {
				t.Fatal(err)
			}
			gotGroups, err := view.GroupBy(col)
			if err != nil {
				t.Fatalf("%s: view GroupBy(%s): %v", label, col, err)
			}
			if !reflect.DeepEqual(gotGroups, wantGroups) && !(len(gotGroups) == 0 && len(wantGroups) == 0) {
				t.Fatalf("%s: GroupBy(%s) mismatch:\n  reference  %v\n  vectorized %v", label, col, wantGroups, gotGroups)
			}
		}
		for _, col := range []string{"score", "level"} {
			wantFloats, err := sub.Floats(col)
			if err != nil {
				t.Fatal(err)
			}
			gotFloats, err := view.Floats(col)
			if err != nil {
				t.Fatalf("%s: view Floats(%s): %v", label, col, err)
			}
			if !reflect.DeepEqual(gotFloats, wantFloats) && !(len(gotFloats) == 0 && len(wantFloats) == 0) {
				t.Fatalf("%s: Floats(%s) mismatch", label, col)
			}
			all, err := tab.Floats(col)
			if err != nil {
				t.Fatal(err)
			}
			wantBins := legacyBinCounts(all, wantFloats, 10)
			gotBins, err := view.BinCounts(col, 10)
			if err != nil {
				t.Fatalf("%s: view BinCounts(%s): %v", label, col, err)
			}
			if !reflect.DeepEqual(gotBins, wantBins) {
				t.Fatalf("%s: BinCounts(%s) mismatch:\n  reference  %v\n  vectorized %v", label, col, wantBins, gotBins)
			}
		}

		// Filter and CountWhere ride the same kernels; check them against the
		// reference too.
		filtered, err := tab.Filter(pred)
		if err != nil {
			t.Fatalf("%s: Filter: %v", label, err)
		}
		if filtered.NumRows() != len(wantIdx) {
			t.Fatalf("%s: Filter rows = %d, reference %d", label, filtered.NumRows(), len(wantIdx))
		}
		n, err := tab.CountWhere(pred)
		if err != nil {
			t.Fatalf("%s: CountWhere: %v", label, err)
		}
		if n != len(wantIdx) {
			t.Fatalf("%s: CountWhere = %d, reference %d", label, n, len(wantIdx))
		}
	}
}

// TestWhereShortCircuitErrorParity pins the combinator error semantics to
// the row-at-a-time reference: a term no row would reach must not be
// compiled, so a dead term with a bad column stays harmless, while a
// reachable bad term errors in both paths.
func TestWhereShortCircuitErrorParity(t *testing.T) {
	tab := randomTable(rand.New(rand.NewSource(17)))
	bad := Equals{Column: "no_such_column", Value: "x"}
	cases := []struct {
		name string
		pred Predicate
	}{
		{"and dead term", And{Terms: []Predicate{Equals{Column: "color", Value: "absent"}, bad}}},
		{"and reachable bad term", And{Terms: []Predicate{bad, Equals{Column: "color", Value: "red"}}}},
		{"or saturated", Or{Terms: []Predicate{Not{Inner: Equals{Column: "color", Value: "absent"}}, bad}}},
		{"or reachable bad term", Or{Terms: []Predicate{bad}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantIdx, wantErr := referenceIndices(tab, tc.pred)
			sel, gotErr := tab.Where(tc.pred)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("error mismatch: reference %v, vectorized %v", wantErr, gotErr)
			}
			if wantErr != nil {
				return
			}
			if sel.Count() != len(wantIdx) {
				t.Errorf("count = %d, reference %d", sel.Count(), len(wantIdx))
			}
		})
	}
}

func TestSelectionAlgebra(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 130} {
		full := FullSelection(n)
		empty := EmptySelection(n)
		if full.Count() != n || empty.Count() != 0 {
			t.Fatalf("n=%d: full=%d empty=%d", n, full.Count(), empty.Count())
		}
		if got := full.Not().Count(); got != 0 {
			t.Fatalf("n=%d: not(full) has %d bits", n, got)
		}
		if got := empty.Not().Count(); got != n {
			t.Fatalf("n=%d: not(empty) has %d bits", n, got)
		}
		if got := full.And(empty).Count(); got != 0 {
			t.Fatalf("n=%d: full∧empty has %d bits", n, got)
		}
		if got := full.Or(empty).Count(); got != n {
			t.Fatalf("n=%d: full∨empty has %d bits", n, got)
		}
		// Double complement restores the original, including the tail word.
		if n > 0 {
			rng := rand.New(rand.NewSource(int64(n)))
			s := newSelection(n)
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					s.setBit(i)
				}
			}
			s.recount()
			back := s.Not().Not()
			if !reflect.DeepEqual(back.Indices(), s.Indices()) {
				t.Fatalf("n=%d: ¬¬s != s", n)
			}
		}
	}
}

func TestSelectionCacheSharing(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tab := randomTable(rng)
	cache := NewSelectionCache(tab)

	p := And{Terms: []Predicate{
		Equals{Column: "color", Value: "red"},
		GreaterThan{Column: "score", Threshold: 0},
	}}
	first, err := cache.Where(p)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cache.Where(p)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("identical predicates should share one cached Selection")
	}

	// Semantically equal In predicates — different value order, constructor
	// or literal — must hit the same cache entry.
	a, err := cache.Where(NewIn("color", "red", "blue"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := cache.Where(In{Column: "color", Values: []string{"blue", "red"}})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("semantically equal In predicates should share one cached Selection")
	}

	hits, partial, misses := cache.Stats()
	if hits != 2 || misses != 2 {
		t.Errorf("Stats() = %d hits, %d misses; want 2, 2", hits, misses)
	}
	if partial != 0 {
		t.Errorf("Stats() partial hits = %d, want 0 (no conjunction prefixes queried)", partial)
	}
	if cache.Len() != 2 {
		t.Errorf("Len() = %d, want 2", cache.Len())
	}

	// The cached result must still be correct.
	wantIdx, err := referenceIndices(tab, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := second.Indices(); !reflect.DeepEqual(got, wantIdx) && !(len(got) == 0 && len(wantIdx) == 0) {
		t.Errorf("cached selection indices mismatch: %v vs %v", got, wantIdx)
	}
}

func TestSelectionCacheCapBounds(t *testing.T) {
	tab := randomTable(rand.New(rand.NewSource(3)))
	cache := NewSelectionCacheCap(tab, 4)
	for i := 0; i < 32; i++ {
		if _, err := cache.Where(GreaterThan{Column: "score", Threshold: float64(i)}); err != nil {
			t.Fatal(err)
		}
		if cache.Len() > 4 {
			t.Fatalf("cache grew to %d entries, cap is 4", cache.Len())
		}
	}
}

func TestViewMaterializeRoundTrip(t *testing.T) {
	tab := randomTable(rand.New(rand.NewSource(5)))
	p := Or{Terms: []Predicate{
		Equals{Column: "flag", Value: "true"},
		Range{Column: "level", Low: -5, High: 5},
	}}
	view, err := tab.View(p)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := view.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	want, err := tab.Filter(p)
	if err != nil {
		t.Fatal(err)
	}
	if mat.NumRows() != want.NumRows() {
		t.Fatalf("Materialize rows = %d, Filter rows = %d", mat.NumRows(), want.NumRows())
	}
	ms, err := mat.Strings("color")
	if err != nil {
		t.Fatal(err)
	}
	ws, err := want.Strings("color")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ms, ws) {
		t.Error("Materialize and Filter disagree on row content")
	}
}
