package dataset

import (
	"fmt"
	"strings"
)

// Predicate is a row-level filter over a table.
type Predicate interface {
	// Describe returns a human-readable rendering such as "salary = >50k".
	Describe() string
	// Matches reports whether row i of the table satisfies the predicate.
	Matches(t *Table, i int) (bool, error)
}

// Equals matches rows whose categorical (or bool) column equals Value.
type Equals struct {
	Column string
	Value  string
}

// Describe implements Predicate.
func (e Equals) Describe() string { return fmt.Sprintf("%s = %s", e.Column, e.Value) }

// Matches implements Predicate.
func (e Equals) Matches(t *Table, i int) (bool, error) {
	c, err := t.Column(e.Column)
	if err != nil {
		return false, err
	}
	v, err := c.StringAt(i)
	if err != nil {
		return false, err
	}
	return v == e.Value, nil
}

// In matches rows whose categorical column equals any of Values.
//
// Build In with NewIn where possible: the constructor sorts Values into the
// canonical order (so Describe, the JSON encoding and cache keys of
// semantically equal predicates compare equal) and pre-builds the membership
// set that Matches consults in O(1) per row. A plain In{...} literal still
// works — Describe and the JSON codec sort on the fly, and Matches falls back
// to a linear scan of Values.
type In struct {
	Column string
	Values []string

	// memo is the pre-built value-membership set (NewIn and the JSON decoder
	// populate it). It is derived state, deliberately excluded from the wire
	// format; two In values with equal Column and Values are semantically
	// equal regardless of memo.
	memo map[string]struct{}
}

// NewIn builds an In predicate with sorted values and a pre-built membership
// set.
func NewIn(column string, values ...string) In {
	sorted := sortedStrings(values)
	memo := make(map[string]struct{}, len(sorted))
	for _, v := range sorted {
		memo[v] = struct{}{}
	}
	return In{Column: column, Values: sorted, memo: memo}
}

// Describe implements Predicate. Values render in sorted order so that
// semantically equal predicates describe identically.
func (p In) Describe() string {
	return fmt.Sprintf("%s in {%s}", p.Column, strings.Join(sortedStrings(p.Values), ", "))
}

// Matches implements Predicate: a set lookup when the predicate was built
// with NewIn (or decoded from JSON), a linear scan for struct literals.
func (p In) Matches(t *Table, i int) (bool, error) {
	c, err := t.Column(p.Column)
	if err != nil {
		return false, err
	}
	v, err := c.StringAt(i)
	if err != nil {
		return false, err
	}
	if p.memo != nil {
		_, ok := p.memo[v]
		return ok, nil
	}
	for _, want := range p.Values {
		if v == want {
			return true, nil
		}
	}
	return false, nil
}

// Range matches rows whose numeric column lies in [Low, High). Use math.Inf
// for open ends.
type Range struct {
	Column string
	Low    float64
	High   float64
}

// Describe implements Predicate.
func (r Range) Describe() string { return fmt.Sprintf("%s in [%g, %g)", r.Column, r.Low, r.High) }

// Matches implements Predicate.
func (r Range) Matches(t *Table, i int) (bool, error) {
	c, err := t.Column(r.Column)
	if err != nil {
		return false, err
	}
	v, err := c.Float(i)
	if err != nil {
		return false, err
	}
	return v >= r.Low && v < r.High, nil
}

// GreaterThan matches rows whose numeric column exceeds Threshold.
type GreaterThan struct {
	Column    string
	Threshold float64
}

// Describe implements Predicate.
func (g GreaterThan) Describe() string { return fmt.Sprintf("%s > %g", g.Column, g.Threshold) }

// Matches implements Predicate.
func (g GreaterThan) Matches(t *Table, i int) (bool, error) {
	c, err := t.Column(g.Column)
	if err != nil {
		return false, err
	}
	v, err := c.Float(i)
	if err != nil {
		return false, err
	}
	return v > g.Threshold, nil
}

// Not negates a predicate. AWARE's heuristic rule 3 (comparing a selection
// against its complement, the "dashed line" in Figure 1) is expressed with
// Not.
type Not struct {
	Inner Predicate
}

// Describe implements Predicate.
func (n Not) Describe() string { return fmt.Sprintf("not(%s)", n.Inner.Describe()) }

// Matches implements Predicate.
func (n Not) Matches(t *Table, i int) (bool, error) {
	ok, err := n.Inner.Matches(t, i)
	return !ok, err
}

// And is the conjunction of predicates; an empty And matches every row.
// Chained visualizations (Figure 1 D–F) accumulate their filters into an And.
type And struct {
	Terms []Predicate
}

// Describe implements Predicate.
func (a And) Describe() string {
	if len(a.Terms) == 0 {
		return "true"
	}
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.Describe()
	}
	return strings.Join(parts, " and ")
}

// Matches implements Predicate.
func (a And) Matches(t *Table, i int) (bool, error) {
	for _, term := range a.Terms {
		ok, err := term.Matches(t, i)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Or is the disjunction of predicates; an empty Or matches no row.
type Or struct {
	Terms []Predicate
}

// Describe implements Predicate.
func (o Or) Describe() string {
	if len(o.Terms) == 0 {
		return "false"
	}
	parts := make([]string, len(o.Terms))
	for i, t := range o.Terms {
		parts[i] = t.Describe()
	}
	return "(" + strings.Join(parts, " or ") + ")"
}

// Matches implements Predicate.
func (o Or) Matches(t *Table, i int) (bool, error) {
	for _, term := range o.Terms {
		ok, err := term.Matches(t, i)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// Filter returns the sub-table of rows matching the predicate. A nil
// predicate matches every row (returning the table itself). The predicate is
// compiled through the vectorized kernels (Table.Where); callers that only
// need counts or histograms should prefer Table.View, which skips the copy
// entirely.
func (t *Table) Filter(p Predicate) (*Table, error) {
	if p == nil {
		return t, nil
	}
	sel, err := t.Where(p)
	if err != nil {
		return nil, err
	}
	idx := sel.Indices()
	sel.Release() // private compile, exclusively owned
	return t.Select(idx)
}

// CountWhere returns the number of rows matching the predicate without
// materializing the sub-table.
func (t *Table) CountWhere(p Predicate) (int, error) {
	if p == nil {
		return t.rows, nil
	}
	sel, err := t.Where(p)
	if err != nil {
		return 0, err
	}
	n := sel.Count()
	sel.Release() // private compile, exclusively owned
	return n, nil
}
