package dataset

import (
	"fmt"
	"strings"
)

// Predicate is a row-level filter over a table.
type Predicate interface {
	// Describe returns a human-readable rendering such as "salary = >50k".
	Describe() string
	// Matches reports whether row i of the table satisfies the predicate.
	Matches(t *Table, i int) (bool, error)
}

// Equals matches rows whose categorical (or bool) column equals Value.
type Equals struct {
	Column string
	Value  string
}

// Describe implements Predicate.
func (e Equals) Describe() string { return fmt.Sprintf("%s = %s", e.Column, e.Value) }

// Matches implements Predicate.
func (e Equals) Matches(t *Table, i int) (bool, error) {
	c, err := t.Column(e.Column)
	if err != nil {
		return false, err
	}
	v, err := c.StringAt(i)
	if err != nil {
		return false, err
	}
	return v == e.Value, nil
}

// In matches rows whose categorical column equals any of Values.
type In struct {
	Column string
	Values []string
}

// Describe implements Predicate.
func (p In) Describe() string {
	return fmt.Sprintf("%s in {%s}", p.Column, strings.Join(p.Values, ", "))
}

// Matches implements Predicate.
func (p In) Matches(t *Table, i int) (bool, error) {
	c, err := t.Column(p.Column)
	if err != nil {
		return false, err
	}
	v, err := c.StringAt(i)
	if err != nil {
		return false, err
	}
	for _, want := range p.Values {
		if v == want {
			return true, nil
		}
	}
	return false, nil
}

// Range matches rows whose numeric column lies in [Low, High). Use math.Inf
// for open ends.
type Range struct {
	Column string
	Low    float64
	High   float64
}

// Describe implements Predicate.
func (r Range) Describe() string { return fmt.Sprintf("%s in [%g, %g)", r.Column, r.Low, r.High) }

// Matches implements Predicate.
func (r Range) Matches(t *Table, i int) (bool, error) {
	c, err := t.Column(r.Column)
	if err != nil {
		return false, err
	}
	v, err := c.Float(i)
	if err != nil {
		return false, err
	}
	return v >= r.Low && v < r.High, nil
}

// GreaterThan matches rows whose numeric column exceeds Threshold.
type GreaterThan struct {
	Column    string
	Threshold float64
}

// Describe implements Predicate.
func (g GreaterThan) Describe() string { return fmt.Sprintf("%s > %g", g.Column, g.Threshold) }

// Matches implements Predicate.
func (g GreaterThan) Matches(t *Table, i int) (bool, error) {
	c, err := t.Column(g.Column)
	if err != nil {
		return false, err
	}
	v, err := c.Float(i)
	if err != nil {
		return false, err
	}
	return v > g.Threshold, nil
}

// Not negates a predicate. AWARE's heuristic rule 3 (comparing a selection
// against its complement, the "dashed line" in Figure 1) is expressed with
// Not.
type Not struct {
	Inner Predicate
}

// Describe implements Predicate.
func (n Not) Describe() string { return fmt.Sprintf("not(%s)", n.Inner.Describe()) }

// Matches implements Predicate.
func (n Not) Matches(t *Table, i int) (bool, error) {
	ok, err := n.Inner.Matches(t, i)
	return !ok, err
}

// And is the conjunction of predicates; an empty And matches every row.
// Chained visualizations (Figure 1 D–F) accumulate their filters into an And.
type And struct {
	Terms []Predicate
}

// Describe implements Predicate.
func (a And) Describe() string {
	if len(a.Terms) == 0 {
		return "true"
	}
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.Describe()
	}
	return strings.Join(parts, " and ")
}

// Matches implements Predicate.
func (a And) Matches(t *Table, i int) (bool, error) {
	for _, term := range a.Terms {
		ok, err := term.Matches(t, i)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Or is the disjunction of predicates; an empty Or matches no row.
type Or struct {
	Terms []Predicate
}

// Describe implements Predicate.
func (o Or) Describe() string {
	if len(o.Terms) == 0 {
		return "false"
	}
	parts := make([]string, len(o.Terms))
	for i, t := range o.Terms {
		parts[i] = t.Describe()
	}
	return "(" + strings.Join(parts, " or ") + ")"
}

// Matches implements Predicate.
func (o Or) Matches(t *Table, i int) (bool, error) {
	for _, term := range o.Terms {
		ok, err := term.Matches(t, i)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// Filter returns the sub-table of rows matching the predicate. A nil
// predicate matches every row (returning the table itself).
func (t *Table) Filter(p Predicate) (*Table, error) {
	if p == nil {
		return t, nil
	}
	var indices []int
	for i := 0; i < t.rows; i++ {
		ok, err := p.Matches(t, i)
		if err != nil {
			return nil, err
		}
		if ok {
			indices = append(indices, i)
		}
	}
	return t.Select(indices)
}

// CountWhere returns the number of rows matching the predicate without
// materializing the sub-table.
func (t *Table) CountWhere(p Predicate) (int, error) {
	if p == nil {
		return t.rows, nil
	}
	count := 0
	for i := 0; i < t.rows; i++ {
		ok, err := p.Matches(t, i)
		if err != nil {
			return 0, err
		}
		if ok {
			count++
		}
	}
	return count, nil
}
