package dataset

import (
	"fmt"
	"sort"

	"aware/internal/stats"
)

// GroupCount is one bar of a categorical histogram.
type GroupCount struct {
	Value string
	Count int
}

// GroupBy returns the per-value counts of a categorical (or bool) column,
// sorted by value for determinism. It is the aggregation behind every bar
// chart in Figure 1.
func (t *Table) GroupBy(column string) ([]GroupCount, error) {
	counts, err := t.ValueCounts(column)
	if err != nil {
		return nil, err
	}
	out := make([]GroupCount, 0, len(counts))
	for v, c := range counts {
		out = append(out, GroupCount{Value: v, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out, nil
}

// GroupMeans returns the mean of a numeric column within each category of a
// categorical column.
func (t *Table) GroupMeans(categorical, numeric string) (map[string]float64, error) {
	cats, err := t.Strings(categorical)
	if err != nil {
		return nil, err
	}
	nums, err := t.Floats(numeric)
	if err != nil {
		return nil, err
	}
	sums := make(map[string]float64)
	counts := make(map[string]int)
	for i := range cats {
		sums[cats[i]] += nums[i]
		counts[cats[i]]++
	}
	out := make(map[string]float64, len(sums))
	for k, s := range sums {
		out[k] = s / float64(counts[k])
	}
	return out, nil
}

// NumericHistogram bins a numeric column into the given number of equal-width
// bins.
func (t *Table) NumericHistogram(column string, bins int) (*stats.Histogram, error) {
	vals, err := t.Floats(column)
	if err != nil {
		return nil, err
	}
	if len(vals) == 0 {
		return nil, ErrEmptyTable
	}
	return stats.NewHistogram(vals, bins)
}

// Crosstab builds the contingency table of two categorical columns, using the
// category order returned for each column. It is the input to the
// chi-squared independence test of heuristic rule 3.
func (t *Table) Crosstab(rowColumn, colColumn string) (table [][]int, rowCats, colCats []string, err error) {
	rowCats, err = t.Categories(rowColumn)
	if err != nil {
		return nil, nil, nil, err
	}
	colCats, err = t.Categories(colColumn)
	if err != nil {
		return nil, nil, nil, err
	}
	rowVals, err := t.Strings(rowColumn)
	if err != nil {
		return nil, nil, nil, err
	}
	colVals, err := t.Strings(colColumn)
	if err != nil {
		return nil, nil, nil, err
	}
	rowIndex := make(map[string]int, len(rowCats))
	for i, c := range rowCats {
		rowIndex[c] = i
	}
	colIndex := make(map[string]int, len(colCats))
	for i, c := range colCats {
		colIndex[c] = i
	}
	table = make([][]int, len(rowCats))
	for i := range table {
		table[i] = make([]int, len(colCats))
	}
	for i := range rowVals {
		table[rowIndex[rowVals[i]]][colIndex[colVals[i]]]++
	}
	return table, rowCats, colCats, nil
}

// Describe returns a short textual summary of the table, useful for CLI
// output.
func (t *Table) Describe() string {
	return fmt.Sprintf("Table{%d rows, %d columns: %v}", t.NumRows(), t.NumColumns(), t.ColumnNames())
}
