package dataset

import (
	"aware/internal/obs"
)

// This file threads request tracing down to kernel depth. Each traced entry
// point is a thin span-aware wrapper over the untraced method — the wrappers
// exist so that the hot untraced paths (Where, View, CountsFor, ...) carry no
// tracing branches at all, and a nil span short-circuits the wrappers back to
// those same untraced bodies at zero cost.
//
// Kernel spans are annotated with deltas of the pool's process-wide counters
// (morsels, cutoff hits, queue-wait ns) taken around the kernel call. Under
// concurrent load the deltas include other requests' morsels that executed in
// the same window — they are an attribution aid, not an exact per-call
// accounting, and /debug/trace documents them as such.

// kernelTrace carries one kernel span plus the pool-counter (and, for
// compile kernels, arena-counter) baselines taken when it was opened. The
// zero value (nil span) is a free no-op.
type kernelTrace struct {
	span    *obs.Span
	pool    *Pool
	before  PoolStats
	arena   *WordArena
	abefore ArenaStats
}

// startKernel opens a kernel-depth child span, or returns the no-op trace
// when the parent is nil. arena may be nil (kernels that never allocate
// selections, e.g. view aggregations).
func startKernel(parent *obs.Span, p *Pool, a *WordArena, name string) kernelTrace {
	if parent == nil {
		return kernelTrace{}
	}
	k := kernelTrace{span: parent.Child(obs.KindKernel, name), pool: p, before: p.Stats(), arena: a}
	if a != nil {
		k.abefore = a.Stats()
	}
	return k
}

// end closes the kernel span with the standard kernel annotations: rows
// spanned, rows selected, the pool-counter deltas observed during the
// kernel, and — when the table compiles through an arena — how many
// selections the kernel took fresh vs recycled (a steady-state kernel shows
// arena_fresh=0).
func (k kernelTrace) end(rows, selected int) {
	if k.span == nil {
		return
	}
	after := k.pool.Stats()
	k.span.Set("rows", rows)
	k.span.Set("selected", selected)
	k.span.Set("morsels", after.MorselsProcessed-k.before.MorselsProcessed)
	k.span.Set("cutoff_hits", after.SequentialCutoffHits-k.before.SequentialCutoffHits)
	k.span.Set("pool_queue_wait_ns", after.QueueWaitNs-k.before.QueueWaitNs)
	if k.arena != nil {
		aafter := k.arena.Stats()
		k.span.Set("arena_fresh", aafter.FreshSelections-k.abefore.FreshSelections)
		k.span.Set("arena_recycled", aafter.RecycledSelections-k.abefore.RecycledSelections)
	}
	k.span.End()
}

// WhereSpan is Table.Where with a kernel span recorded under parent (nil
// parent: identical to Where).
func (t *Table) WhereSpan(p Predicate, parent *obs.Span) (*Selection, error) {
	if parent == nil {
		return t.Where(p)
	}
	k := startKernel(parent, t.execPool(), t.Arena(), "table.where")
	sel, err := t.Where(p)
	if err != nil {
		k.span.Set("error", err.Error())
		k.end(t.rows, 0)
		return nil, err
	}
	k.end(t.rows, sel.Count())
	return sel, nil
}

// WhereSpan is SelectionCache.Where with a kernel span recorded under parent,
// annotated with the cache outcome (full/hit/miss/uncacheable) so a trace
// shows whether the filter compiled or was served from the shared bitmap.
func (c *SelectionCache) WhereSpan(p Predicate, parent *obs.Span) (*Selection, error) {
	if parent == nil {
		sel, _, err := c.whereCached(p)
		return sel, err
	}
	k := startKernel(parent, c.table.execPool(), c.table.Arena(), "cache.where")
	sel, outcome, err := c.whereCached(p)
	k.span.Set("cache", outcome)
	if err != nil {
		k.span.Set("error", err.Error())
		k.end(c.table.rows, 0)
		return nil, err
	}
	k.end(c.table.rows, sel.Count())
	return sel, nil
}

// ViewSpan is SelectionCache.View through WhereSpan.
func (c *SelectionCache) ViewSpan(p Predicate, parent *obs.Span) (View, error) {
	sel, err := c.WhereSpan(p, parent)
	if err != nil {
		return View{}, err
	}
	return View{table: c.table, sel: sel}, nil
}

// CountsForSpan is View.CountsFor with a kernel span under parent.
func (v View) CountsForSpan(name string, categories []string, parent *obs.Span) ([]int, error) {
	if parent == nil {
		return v.CountsFor(name, categories)
	}
	k := startKernel(parent, v.table.execPool(), nil, "view.counts_for")
	k.span.Set("column", name)
	out, err := v.CountsFor(name, categories)
	if err != nil {
		k.span.Set("error", err.Error())
	}
	k.end(v.sel.n, v.sel.count)
	return out, err
}

// BinCountsSpan is View.BinCounts with a kernel span under parent.
func (v View) BinCountsSpan(name string, bins int, parent *obs.Span) ([]int, error) {
	if parent == nil {
		return v.BinCounts(name, bins)
	}
	k := startKernel(parent, v.table.execPool(), nil, "view.bin_counts")
	k.span.Set("column", name)
	k.span.Set("bins", bins)
	out, err := v.BinCounts(name, bins)
	if err != nil {
		k.span.Set("error", err.Error())
	}
	k.end(v.sel.n, v.sel.count)
	return out, err
}

// FloatsSpan is View.Floats with a kernel span under parent.
func (v View) FloatsSpan(name string, parent *obs.Span) ([]float64, error) {
	if parent == nil {
		return v.Floats(name)
	}
	k := startKernel(parent, v.table.execPool(), nil, "view.floats")
	k.span.Set("column", name)
	out, err := v.Floats(name)
	if err != nil {
		k.span.Set("error", err.Error())
	}
	k.end(v.sel.n, v.sel.count)
	return out, err
}
