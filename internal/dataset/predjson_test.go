package dataset

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestPredicateJSONRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		pred Predicate
	}{
		{"equals", Equals{Column: "gender", Value: "Female"}},
		{"equals empty value", Equals{Column: "note", Value: ""}},
		{"in", NewIn("education", "Master", "PhD")},
		{"in single", NewIn("education", "HS")},
		{"range", Range{Column: "age", Low: 30, High: 40}},
		{"range open low", Range{Column: "age", Low: math.Inf(-1), High: 65}},
		{"range open high", Range{Column: "age", Low: 18, High: math.Inf(1)}},
		{"range negative bounds", Range{Column: "delta", Low: -2.5, High: -0.25}},
		{"range zero low", Range{Column: "age", Low: 0, High: 10}},
		{"gt", GreaterThan{Column: "hours_per_week", Threshold: 45}},
		{"gt zero", GreaterThan{Column: "hours_per_week", Threshold: 0}},
		{"not", Not{Inner: Equals{Column: "gender", Value: "Male"}}},
		{"not nested", Not{Inner: Not{Inner: GreaterThan{Column: "age", Threshold: 30}}}},
		{"and empty", And{}},
		{"and", And{Terms: []Predicate{
			Equals{Column: "gender", Value: "Female"},
			Range{Column: "age", Low: 30, High: 40},
		}}},
		{"or empty", Or{}},
		{"or", Or{Terms: []Predicate{
			Equals{Column: "education", Value: "PhD"},
			GreaterThan{Column: "hours_per_week", Threshold: 50},
		}}},
		{"deeply nested", And{Terms: []Predicate{
			Or{Terms: []Predicate{
				Equals{Column: "occupation", Value: "Sales"},
				NewIn("occupation", "Admin", "Craft"),
			}},
			Not{Inner: Range{Column: "age", Low: math.Inf(-1), High: 25}},
			Equals{Column: "salary_over_50k", Value: "true"},
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data, err := MarshalPredicate(tc.pred)
			if err != nil {
				t.Fatalf("MarshalPredicate: %v", err)
			}
			got, err := UnmarshalPredicate(data)
			if err != nil {
				t.Fatalf("UnmarshalPredicate(%s): %v", data, err)
			}
			if !reflect.DeepEqual(got, tc.pred) {
				t.Errorf("round trip mismatch:\n  sent %#v\n  got  %#v\n  wire %s", tc.pred, got, data)
			}
			// The human-readable rendering must survive too — it is what the
			// server embeds in hypothesis descriptions.
			if got.Describe() != tc.pred.Describe() {
				t.Errorf("Describe mismatch: sent %q, got %q", tc.pred.Describe(), got.Describe())
			}
		})
	}
}

func TestPredicateJSONWireShape(t *testing.T) {
	data, err := MarshalPredicate(Range{Column: "age", Low: math.Inf(-1), High: 65})
	if err != nil {
		t.Fatalf("MarshalPredicate: %v", err)
	}
	if !strings.Contains(string(data), `"low":"-inf"`) {
		t.Errorf("open low bound should encode as the string \"-inf\", got %s", data)
	}
	data, err = MarshalPredicate(Range{Column: "age", Low: 18, High: math.Inf(1)})
	if err != nil {
		t.Fatalf("MarshalPredicate: %v", err)
	}
	if !strings.Contains(string(data), `"high":"+inf"`) {
		t.Errorf("open high bound should encode as the string \"+inf\", got %s", data)
	}
	// In values encode in sorted order regardless of how the predicate was
	// written, so semantically equal predicates serialize (and cache) equal.
	data, err = MarshalPredicate(In{Column: "education", Values: []string{"PhD", "Bachelor", "Master"}})
	if err != nil {
		t.Fatalf("MarshalPredicate: %v", err)
	}
	if !strings.Contains(string(data), `"values":["Bachelor","Master","PhD"]`) {
		t.Errorf("in values should encode sorted, got %s", data)
	}
	sortedData, err := MarshalPredicate(NewIn("education", "Master", "PhD", "Bachelor"))
	if err != nil {
		t.Fatalf("MarshalPredicate: %v", err)
	}
	if string(sortedData) != string(data) {
		t.Errorf("semantically equal In predicates encode differently:\n  %s\n  %s", data, sortedData)
	}
	// Leaf predicates must not carry a spurious "terms" field.
	data, err = MarshalPredicate(Equals{Column: "gender", Value: "Female"})
	if err != nil {
		t.Fatalf("MarshalPredicate: %v", err)
	}
	if strings.Contains(string(data), "terms") {
		t.Errorf("equals should not encode a terms field, got %s", data)
	}
}

func TestUnmarshalPredicateErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"unknown type", `{"type": "xor", "terms": []}`},
		{"missing type", `{"column": "age"}`},
		{"equals without column", `{"type": "equals", "value": "x"}`},
		{"gt without threshold", `{"type": "gt", "column": "age"}`},
		{"not without term", `{"type": "not"}`},
		{"bad bound", `{"type": "gt", "column": "age", "threshold": "wide"}`},
		{"bad nested term", `{"type": "and", "terms": [{"type": "mystery"}]}`},
		{"not json", `{{`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := UnmarshalPredicate([]byte(tc.json)); err == nil {
				t.Errorf("UnmarshalPredicate(%s) succeeded, want error", tc.json)
			}
		})
	}
}

func TestMarshalPredicateErrors(t *testing.T) {
	cases := []struct {
		name string
		pred Predicate
	}{
		{"nil predicate", nil},
		{"not with nil inner", Not{}},
		{"NaN threshold", GreaterThan{Column: "age", Threshold: math.NaN()}},
		{"nested nil term", And{Terms: []Predicate{nil}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := MarshalPredicate(tc.pred); err == nil {
				t.Errorf("MarshalPredicate(%#v) succeeded, want error", tc.pred)
			}
		})
	}
}

// TestPredicateJSONMatches checks that a decoded predicate filters identically
// to the original on a real table.
func TestPredicateJSONMatches(t *testing.T) {
	table, err := NewTable(
		NewCategoricalColumn("color", []string{"red", "green", "blue", "red", "green"}),
		NewFloatColumn("size", []float64{1, 2, 3, 4, 5}),
	)
	if err != nil {
		t.Fatal(err)
	}
	orig := And{Terms: []Predicate{
		Or{Terms: []Predicate{
			Equals{Column: "color", Value: "red"},
			Equals{Column: "color", Value: "green"},
		}},
		Not{Inner: GreaterThan{Column: "size", Threshold: 4}},
	}}
	data, err := MarshalPredicate(orig)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := UnmarshalPredicate(data)
	if err != nil {
		t.Fatal(err)
	}
	wantCount, err := table.CountWhere(orig)
	if err != nil {
		t.Fatal(err)
	}
	gotCount, err := table.CountWhere(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if wantCount != gotCount {
		t.Errorf("decoded predicate matches %d rows, original %d", gotCount, wantCount)
	}
	if wantCount != 3 {
		t.Errorf("original predicate matches %d rows, want 3", wantCount)
	}
}
