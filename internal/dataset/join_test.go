package dataset

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// This file is the differential test bed for the hash equi-join: for
// randomized table pairs over every joinable key type, filtered on both
// sides, on sequential and parallel pools, HashJoin must produce a table
// column-for-column identical to the nested-loop JoinOracle — including the
// canonical (left, right)-ascending row order, whichever side builds.

// randomKeyedTable builds a join side: a key column of the given type plus one
// payload column per type, with key cardinality low enough that joins produce
// matches. colPrefix keeps the two sides' payload names distinct.
func randomKeyedTable(rng *rand.Rand, rows int, keyType ColumnType, colPrefix string) *Table {
	keyDomain := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "unmatched-" + colPrefix}
	strs := make([]string, rows)
	ints := make([]int64, rows)
	bools := make([]bool, rows)
	payload := make([]float64, rows)
	tags := make([]string, rows)
	for i := 0; i < rows; i++ {
		strs[i] = keyDomain[rng.Intn(len(keyDomain))]
		ints[i] = int64(rng.Intn(9) - 4) // includes negatives: uint64 bit-pattern keys
		bools[i] = rng.Intn(2) == 0
		payload[i] = float64(rng.Intn(1000))
		tags[i] = []string{"x", "y", "z"}[rng.Intn(3)]
	}
	var key *Column
	switch keyType {
	case Categorical:
		key = NewCategoricalColumn("key", strs)
	case Int64:
		key = NewIntColumn("key", ints)
	case Bool:
		key = NewBoolColumn("key", bools)
	default:
		panic("unjoinable key type in test generator")
	}
	tab, err := NewTable(
		key,
		NewFloatColumn(colPrefix+"_payload", payload),
		NewCategoricalColumn(colPrefix+"_tag", tags),
	)
	if err != nil {
		panic(err)
	}
	return tab
}

// sideView filters a join side with a simple predicate (sometimes none).
func sideView(t *testing.T, rng *rand.Rand, tab *Table, colPrefix string) View {
	t.Helper()
	var sel *Selection
	var err error
	switch rng.Intn(3) {
	case 0:
		sel = FullSelection(tab.NumRows())
	case 1:
		sel, err = tab.Where(Range{Column: colPrefix + "_payload", Low: 0, High: float64(rng.Intn(1000))})
	default:
		sel, err = tab.Where(NewIn(colPrefix+"_tag", "x", "z"))
	}
	if err != nil {
		t.Fatalf("side filter: %v", err)
	}
	v, err := NewView(tab, sel)
	if err != nil {
		t.Fatalf("NewView: %v", err)
	}
	return v
}

// requireTablesEqual compares two tables cell for cell through the typed
// vectors (categorical columns via their decoded strings, since the two join
// paths share dictionaries with their source tables, not with each other).
func requireTablesEqual(t *testing.T, label string, a, b *Table) {
	t.Helper()
	if a.NumRows() != b.NumRows() {
		t.Fatalf("%s: %d rows vs %d", label, a.NumRows(), b.NumRows())
	}
	an, bn := a.ColumnNames(), b.ColumnNames()
	if len(an) != len(bn) {
		t.Fatalf("%s: %d columns vs %d", label, len(an), len(bn))
	}
	for i := range an {
		if an[i] != bn[i] {
			t.Fatalf("%s: column %d named %q vs %q", label, i, an[i], bn[i])
		}
		ac, _ := a.Column(an[i])
		bc, _ := b.Column(bn[i])
		if ac.Type != bc.Type {
			t.Fatalf("%s: column %q type %v vs %v", label, an[i], ac.Type, bc.Type)
		}
		for row := 0; row < a.NumRows(); row++ {
			switch ac.Type {
			case Float64:
				if ac.floats[row] != bc.floats[row] {
					t.Fatalf("%s: column %q row %d: %v vs %v", label, an[i], row, ac.floats[row], bc.floats[row])
				}
			case Int64:
				if ac.ints[row] != bc.ints[row] {
					t.Fatalf("%s: column %q row %d: %v vs %v", label, an[i], row, ac.ints[row], bc.ints[row])
				}
			case Bool:
				if ac.bools[row] != bc.bools[row] {
					t.Fatalf("%s: column %q row %d: %v vs %v", label, an[i], row, ac.bools[row], bc.bools[row])
				}
			case Categorical:
				if ac.dict[ac.codes[row]] != bc.dict[bc.codes[row]] {
					t.Fatalf("%s: column %q row %d: %q vs %q", label, an[i], row,
						ac.dict[ac.codes[row]], bc.dict[bc.codes[row]])
				}
			}
		}
	}
}

// TestHashJoinMatchesOracleRandomized is the join property test: random table
// pairs (sizes chosen so both build directions occur), every key type, random
// side filters, pools of 1, 2 and 8 workers.
func TestHashJoinMatchesOracleRandomized(t *testing.T) {
	pools := []*Pool{NewPool(1), NewPool(2), NewPool(8)}
	for _, p := range pools {
		defer p.Close()
	}
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		keyType := []ColumnType{Categorical, Int64, Bool}[rng.Intn(3)]
		leftRows, rightRows := 1+rng.Intn(300), 1+rng.Intn(40)
		if rng.Intn(2) == 0 {
			leftRows, rightRows = rightRows, leftRows // flip which side builds
		}
		left := randomKeyedTable(rng, leftRows, keyType, "l")
		right := randomKeyedTable(rng, rightRows, keyType, "r")
		lv, rv := sideView(t, rng, left, "l"), sideView(t, rng, right, "r")
		want, err := JoinOracle(lv, rv, "key", "key", "r_")
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		for _, p := range pools {
			left.SetPool(p)
			right.SetPool(p)
			got, err := HashJoin(lv, rv, "key", "key", "r_")
			if err != nil {
				t.Fatalf("seed %d pool %d: hash join: %v", seed, p.workers, err)
			}
			requireTablesEqual(t, fmt.Sprintf("seed %d pool %d (%v key, %dx%d)",
				seed, p.workers, keyType, leftRows, rightRows), got, want)
		}
	}
}

// TestHashJoinMatchesOracleAtScale crosses the morsel boundary: a 200k-row
// probe side against a small dimension, sequential and parallel.
func TestHashJoinMatchesOracleAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("200k-row join in -short mode")
	}
	rng := rand.New(rand.NewSource(7))
	left := randomKeyedTable(rng, 200000, Categorical, "l")
	right := randomKeyedTable(rng, 12, Categorical, "r")
	lv := sideView(t, rng, left, "l")
	rv, err := NewView(right, FullSelection(right.NumRows()))
	if err != nil {
		t.Fatal(err)
	}
	want, err := JoinOracle(lv, rv, "key", "key", "r_")
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	for _, workers := range []int{1, 8} {
		p := NewPool(workers)
		left.SetPool(p)
		got, err := HashJoin(lv, rv, "key", "key", "r_")
		if err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
		requireTablesEqual(t, fmt.Sprintf("%d workers", workers), got, want)
		p.Close()
	}
}

// TestJoinErrors covers the contract violations both join paths must reject
// identically: unjoinable and mismatched key types, unknown key columns, and
// output column collisions under an empty prefix.
func TestJoinErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	catL := randomKeyedTable(rng, 10, Categorical, "l")
	catR := randomKeyedTable(rng, 10, Categorical, "r")
	intR := randomKeyedTable(rng, 10, Int64, "r")
	full := func(tab *Table) View {
		v, err := NewView(tab, FullSelection(tab.NumRows()))
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	cases := []struct {
		name           string
		left, right    View
		lk, rk, prefix string
		wantKeyTypeErr bool
	}{
		{"mismatched key types", full(catL), full(intR), "key", "key", "r_", true},
		{"float key", full(catL), full(catR), "l_payload", "r_payload", "r_", true},
		{"unknown left key", full(catL), full(catR), "nope", "key", "r_", false},
		{"unknown right key", full(catL), full(catR), "key", "nope", "r_", false},
		{"column collision on empty prefix", full(catL), full(catL), "key", "key", "", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, hashErr := HashJoin(tc.left, tc.right, tc.lk, tc.rk, tc.prefix)
			_, oracleErr := JoinOracle(tc.left, tc.right, tc.lk, tc.rk, tc.prefix)
			if hashErr == nil || oracleErr == nil {
				t.Fatalf("want errors from both paths, got hash=%v oracle=%v", hashErr, oracleErr)
			}
			if tc.wantKeyTypeErr && !errors.Is(hashErr, ErrJoinKeyType) {
				t.Errorf("hash error %v, want ErrJoinKeyType", hashErr)
			}
		})
	}
}

// FuzzJoinOracle is the CI fuzz smoke target: arbitrary shapes and seeds must
// never make the hash join diverge from the nested-loop oracle (or crash).
func FuzzJoinOracle(f *testing.F) {
	f.Add(int64(1), uint16(10), uint16(5), uint8(0))
	f.Add(int64(2), uint16(1), uint16(1), uint8(1))
	f.Add(int64(3), uint16(130), uint16(64), uint8(2))
	f.Add(int64(4), uint16(0), uint16(40), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, leftRows, rightRows uint16, keyKind uint8) {
		lr := 1 + int(leftRows)%400
		rr := 1 + int(rightRows)%400
		keyType := []ColumnType{Categorical, Int64, Bool}[int(keyKind)%3]
		rng := rand.New(rand.NewSource(seed))
		left := randomKeyedTable(rng, lr, keyType, "l")
		right := randomKeyedTable(rng, rr, keyType, "r")
		lv, rv := sideView(t, rng, left, "l"), sideView(t, rng, right, "r")
		want, err := JoinOracle(lv, rv, "key", "key", "r_")
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		got, err := HashJoin(lv, rv, "key", "key", "r_")
		if err != nil {
			t.Fatalf("hash: %v", err)
		}
		requireTablesEqual(t, fmt.Sprintf("seed %d %v %dx%d", seed, keyType, lr, rr), got, want)
	})
}
