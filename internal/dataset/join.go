package dataset

import (
	"fmt"
	"math"
	"sort"

	"aware/internal/colstore"
)

// This file is the two-table hash equi-join kernel. HashJoin is the engine
// path: the smaller side (by exact bitmap cardinality — Selection.Count is
// free) builds a hash table pre-sized to its row count, and the larger side
// streams morsel-at-a-time over its View probing it, with a two-pass
// count/prefix-sum/write scheme so the output is deterministic on any pool.
// JoinOracle is the row-at-a-time nested-loop reference kept for differential
// testing, exactly as WhereGeneric is for the predicate kernels: both paths
// must produce column-for-column identical tables.
//
// Output contract (both paths): one row per matching (left row, right row)
// pair, ordered by left row ascending, then right row ascending. The result
// table holds every left column under its own name followed by every right
// column renamed rightPrefix+name; name collisions (for example an empty
// prefix over overlapping schemas) fail with ErrColumnExists.

// ErrJoinKeyType is returned when join key columns are not an equi-joinable
// pair (both categorical, both int64, or both bool).
var ErrJoinKeyType = fmt.Errorf("dataset: join keys must be categorical, int64 or bool columns of the same type")

// joinKeyColumns resolves and type-checks the two key columns.
func joinKeyColumns(left, right View, leftKey, rightKey string) (lc, rc *Column, err error) {
	if left.table == nil || right.table == nil {
		return nil, nil, fmt.Errorf("dataset: join requires two views")
	}
	lc, err = left.table.Column(leftKey)
	if err != nil {
		return nil, nil, err
	}
	rc, err = right.table.Column(rightKey)
	if err != nil {
		return nil, nil, err
	}
	if lc.Type != rc.Type {
		return nil, nil, fmt.Errorf("%w: %s is %s, %s is %s", ErrJoinKeyType, lc.Name, lc.Type, rc.Name, rc.Type)
	}
	switch lc.Type {
	case Categorical, Int64, Bool:
		return lc, rc, nil
	default:
		return nil, nil, fmt.Errorf("%w: %s is %s", ErrJoinKeyType, lc.Name, lc.Type)
	}
}

// checkJoinSpans guards the int32 row-index representation the join
// materializes through.
func checkJoinSpans(left, right View) error {
	if left.sel.n > math.MaxInt32 || right.sel.n > math.MaxInt32 {
		return fmt.Errorf("dataset: join sides must span fewer than 2^31 rows")
	}
	return nil
}

// HashJoin equi-joins two filtered views into a new table. The build side is
// chosen greedily (the side with the smaller exact selection cardinality),
// its matching rows are hashed into a postings map pre-sized from the bitmap
// count, and the probe side streams morsel-at-a-time over its selection. The
// result is identical — ordering included — to JoinOracle.
func HashJoin(left, right View, leftKey, rightKey, rightPrefix string) (*Table, error) {
	lc, rc, err := joinKeyColumns(left, right, leftKey, rightKey)
	if err != nil {
		return nil, err
	}
	if err := checkJoinSpans(left, right); err != nil {
		return nil, err
	}
	var lidx, ridx []int32
	if right.sel.Count() <= left.sel.Count() {
		// Build on the right, probe the left: probing in ascending left-row
		// order with ascending postings makes the output (l, r)-sorted for
		// free.
		lidx, ridx, err = hashJoinPairs(left, lc, right, rc)
	} else {
		// Build on the left, probe the right: pairs come out right-major, so
		// re-sort them into the canonical (l, r) order.
		ridx, lidx, err = hashJoinPairs(right, rc, left, lc)
		if err == nil {
			sortPairs(lidx, ridx)
		}
	}
	if err != nil {
		return nil, err
	}
	return materializeJoin(left.table, right.table, lidx, ridx, rightPrefix)
}

// JoinOracle is the nested-loop differential reference: every (left, right)
// row pair is compared through the row-at-a-time value accessors, with no
// hashing, no dictionary-code translation and no parallelism.
func JoinOracle(left, right View, leftKey, rightKey, rightPrefix string) (*Table, error) {
	lc, rc, err := joinKeyColumns(left, right, leftKey, rightKey)
	if err != nil {
		return nil, err
	}
	if err := checkJoinSpans(left, right); err != nil {
		return nil, err
	}
	var lidx, ridx []int32
	var cmpErr error
	left.sel.ForEach(func(lrow int) {
		right.sel.ForEach(func(rrow int) {
			if cmpErr != nil {
				return
			}
			eq, err := joinKeyEqual(lc, lrow, rc, rrow)
			if err != nil {
				cmpErr = err
				return
			}
			if eq {
				lidx = append(lidx, int32(lrow))
				ridx = append(ridx, int32(rrow))
			}
		})
	})
	if cmpErr != nil {
		return nil, cmpErr
	}
	return materializeJoin(left.table, right.table, lidx, ridx, rightPrefix)
}

// joinKeyEqual compares one key pair through the generic value accessors.
func joinKeyEqual(lc *Column, lrow int, rc *Column, rrow int) (bool, error) {
	switch lc.Type {
	case Categorical:
		lv, err := lc.StringAt(lrow)
		if err != nil {
			return false, err
		}
		rv, err := rc.StringAt(rrow)
		if err != nil {
			return false, err
		}
		return lv == rv, nil
	case Int64:
		return lc.ints[lrow] == rc.ints[rrow], nil
	case Bool:
		return lc.bools[lrow] == rc.bools[rrow], nil
	default:
		return false, fmt.Errorf("%w: %s is %s", ErrJoinKeyType, lc.Name, lc.Type)
	}
}

// missingCode marks a probe-side dictionary value absent from the build side.
// Categorical postings keys are build-side codes (< 2^32), so the sentinel
// can never collide; the numeric key types never consult the translation.
const missingCode = ^uint64(0)

// joinKeyFuncs returns the postings-key extractors for the probe and build
// sides. Categorical keys are build-side dictionary codes: the probe
// dictionary is translated once (O(dict) string lookups), after which probing
// is a pure integer array walk. Int64 keys use the value's bit pattern; bool
// keys use 0/1.
func joinKeyFuncs(probeCol, buildCol *Column) (probeAt, buildAt func(row int) uint64) {
	switch buildCol.Type {
	case Categorical:
		trans := make([]uint64, len(probeCol.dict))
		for code, val := range probeCol.dict {
			if bcode, ok := buildCol.codeOf[val]; ok {
				trans[code] = uint64(bcode)
			} else {
				trans[code] = missingCode
			}
		}
		probeAt = func(row int) uint64 { return trans[probeCol.codes[row]] }
		buildAt = func(row int) uint64 { return uint64(buildCol.codes[row]) }
	case Int64:
		probeAt = func(row int) uint64 { return uint64(probeCol.ints[row]) }
		buildAt = func(row int) uint64 { return uint64(buildCol.ints[row]) }
	default: // Bool, guarded by joinKeyColumns
		asKey := func(c *Column) func(row int) uint64 {
			return func(row int) uint64 {
				if c.bools[row] {
					return 1
				}
				return 0
			}
		}
		probeAt = asKey(probeCol)
		buildAt = asKey(buildCol)
	}
	return probeAt, buildAt
}

// hashJoinPairs builds on build and probes with probe, returning the matching
// (probe row, build row) index pairs ordered probe-major (probe rows
// ascending, build rows ascending within one probe row). The probe side
// streams morsel-at-a-time: a counting pass fixes each morsel's output offset
// (exclusive prefix sum in morsel order), then every morsel writes its
// disjoint slice — the output is byte-identical on any pool.
func hashJoinPairs(probe View, probeCol *Column, build View, buildCol *Column) (probeIdx, buildIdx []int32, err error) {
	probeAt, buildAt := joinKeyFuncs(probeCol, buildCol)
	postings := make(map[uint64][]int32, build.sel.Count())
	build.sel.ForEach(func(row int) {
		k := buildAt(row)
		postings[k] = append(postings[k], int32(row))
	})
	// A categorical probe row whose value is absent from the build dictionary
	// extracts missingCode, which no build row can produce (codes < 2^32), so
	// its postings lookup simply misses. Int64 keys never use the sentinel —
	// uint64(-1) is a legitimate key there and matches normally.

	p := probe.table.execPool()
	n := probe.sel.n
	m := chunks(n, morselRows)
	if m == 0 {
		return nil, nil, nil
	}
	offsets := make([]int, m)
	p.Run(m, func(i int) {
		lo := i * morselRows
		c := 0
		probe.sel.forEachIn(lo, min(lo+morselRows, n), func(row int) {
			c += len(postings[probeAt(row)])
		})
		offsets[i] = c
	})
	total := 0
	for i, c := range offsets {
		offsets[i] = total
		total += c
	}
	probeIdx = make([]int32, total)
	buildIdx = make([]int32, total)
	p.Run(m, func(i int) {
		lo := i * morselRows
		j := offsets[i]
		probe.sel.forEachIn(lo, min(lo+morselRows, n), func(row int) {
			for _, br := range postings[probeAt(row)] {
				probeIdx[j] = int32(row)
				buildIdx[j] = br
				j++
			}
		})
	})
	return probeIdx, buildIdx, nil
}

// sortPairs re-sorts parallel index slices into (l, r) ascending order — the
// canonical output order — after a probe-right join produced them r-major.
func sortPairs(lidx, ridx []int32) {
	packed := make([]uint64, len(lidx))
	for i := range packed {
		packed[i] = uint64(uint32(lidx[i]))<<32 | uint64(uint32(ridx[i]))
	}
	sort.Slice(packed, func(i, j int) bool { return packed[i] < packed[j] })
	for i, pk := range packed {
		lidx[i] = int32(pk >> 32)
		ridx[i] = int32(uint32(pk))
	}
}

// gatherRows is Column.gather over int32 indices with a target name — the
// join materialization's building block. Categorical columns share their
// (immutable) dictionary, exactly like gather.
func (c *Column) gatherRows(indices []int32, name string) *Column {
	phys := &colstore.Column{Name: name, Kind: kindOfType(c.Type)}
	switch c.Type {
	case Float64:
		phys.Floats = make([]float64, len(indices))
		for i, idx := range indices {
			phys.Floats[i] = c.floats[idx]
		}
	case Int64:
		phys.Ints = make([]int64, len(indices))
		for i, idx := range indices {
			phys.Ints[i] = c.ints[idx]
		}
	case Categorical:
		phys.Dict = c.dict
		phys.CodeOf = c.codeOf
		phys.Codes = make([]uint32, len(indices))
		for i, idx := range indices {
			phys.Codes[i] = c.codes[idx]
		}
	case Bool:
		phys.Bools = make([]bool, len(indices))
		for i, idx := range indices {
			phys.Bools[i] = c.bools[idx]
		}
	}
	return wrapColumn(phys)
}

// materializeJoin gathers the matched row pairs into a standalone table:
// left columns first under their own names, then right columns renamed
// rightPrefix+name. The result inherits the left table's execution pool.
func materializeJoin(lt, rt *Table, lidx, ridx []int32, rightPrefix string) (*Table, error) {
	cols := make([]*Column, 0, len(lt.columns)+len(rt.columns))
	for _, c := range lt.columns {
		cols = append(cols, c.gatherRows(lidx, c.Name))
	}
	for _, c := range rt.columns {
		cols = append(cols, c.gatherRows(ridx, rightPrefix+c.Name))
	}
	out, err := NewTable(cols...)
	if err != nil {
		return nil, err
	}
	out.pool.Store(lt.pool.Load())
	return out, nil
}
