package dataset

import (
	"fmt"
	"math/bits"
)

// This file is the tuned generation of the predicate leaf kernels — the
// default path behind Table.Where. Three techniques push them toward the
// hardware limit, each verified bit-identical to the generic kernels
// (Table.WhereGeneric, the PR-5 bodies in selection.go) by the differential
// tests in kernels_test.go:
//
//   - branch-free compares: each row's predicate is computed as a 0/1 word
//     (b2u compiles to SETcc/CSET, no branch) and shifted into an
//     accumulator; the Selection word is written once per 64 rows instead
//     of a read-modify-write per matching row, and the per-row
//     mispredictable branch on selectivity disappears entirely;
//   - bounds-check elimination: every kernel re-slices its column to the
//     exact morsel window and walks fixed 64-element chunks, so the
//     compiler proves the inner-loop accesses in range and drops the
//     checks;
//   - dict-width specialization: In over a narrow dictionary (<= 256
//     categories, every census-shaped column) tests membership against a
//     4-word bitset that lives in registers/L1; wider dictionaries use a
//     per-code bitset sized to the dictionary. Both replace the generic
//     kernel's per-row hash-map probe.
//
// Every kernel writes all words covering its window (the bit accumulator
// naturally leaves tail bits zero), so tuned fills do not depend on
// pre-zeroed storage — though arena-recycled words are zeroed anyway for
// the generic kernels' sake.

// b2u converts a bool to a 0/1 word without a branch: the compiler lowers
// this exact shape to a flag materialization (SETcc on amd64, CSET on
// arm64), never a jump.
func b2u(b bool) uint64 {
	var u uint64
	if b {
		u = 1
	}
	return u
}

// fillRangeFloats writes the bitmap words for low <= v < high over one
// word-aligned window of a float column. dst spans exactly the window's
// words; col is the window's rows. Returns the number of set bits.
func fillRangeFloats(dst []uint64, col []float64, low, high float64) int {
	n := 0
	nw := len(col) / 64
	for wi := 0; wi < nw; wi++ {
		chunk := col[wi*64 : wi*64+64 : wi*64+64]
		var w uint64
		for j, v := range chunk {
			w |= (b2u(v >= low) & b2u(v < high)) << uint(j)
		}
		dst[wi] = w
		n += bits.OnesCount64(w)
	}
	if tail := col[nw*64:]; len(tail) > 0 {
		var w uint64
		for j, v := range tail {
			w |= (b2u(v >= low) & b2u(v < high)) << uint(j)
		}
		dst[nw] = w
		n += bits.OnesCount64(w)
	}
	return n
}

// fillRangeInts is fillRangeFloats over an int column. The row value is
// converted to float64 before comparing — the exact arithmetic of the
// generic kernel and the row-at-a-time reference, so results stay
// bit-identical even for int64 values a float64 cannot represent.
func fillRangeInts(dst []uint64, col []int64, low, high float64) int {
	n := 0
	nw := len(col) / 64
	for wi := 0; wi < nw; wi++ {
		chunk := col[wi*64 : wi*64+64 : wi*64+64]
		var w uint64
		for j, v := range chunk {
			f := float64(v)
			w |= (b2u(f >= low) & b2u(f < high)) << uint(j)
		}
		dst[wi] = w
		n += bits.OnesCount64(w)
	}
	if tail := col[nw*64:]; len(tail) > 0 {
		var w uint64
		for j, v := range tail {
			f := float64(v)
			w |= (b2u(f >= low) & b2u(f < high)) << uint(j)
		}
		dst[nw] = w
		n += bits.OnesCount64(w)
	}
	return n
}

// fillGtFloats writes the bitmap words for v > threshold over a float
// window.
func fillGtFloats(dst []uint64, col []float64, threshold float64) int {
	n := 0
	nw := len(col) / 64
	for wi := 0; wi < nw; wi++ {
		chunk := col[wi*64 : wi*64+64 : wi*64+64]
		var w uint64
		for j, v := range chunk {
			w |= b2u(v > threshold) << uint(j)
		}
		dst[wi] = w
		n += bits.OnesCount64(w)
	}
	if tail := col[nw*64:]; len(tail) > 0 {
		var w uint64
		for j, v := range tail {
			w |= b2u(v > threshold) << uint(j)
		}
		dst[nw] = w
		n += bits.OnesCount64(w)
	}
	return n
}

// fillGtInts is fillGtFloats over an int column (float64 conversion as in
// fillRangeInts).
func fillGtInts(dst []uint64, col []int64, threshold float64) int {
	n := 0
	nw := len(col) / 64
	for wi := 0; wi < nw; wi++ {
		chunk := col[wi*64 : wi*64+64 : wi*64+64]
		var w uint64
		for j, v := range chunk {
			w |= b2u(float64(v) > threshold) << uint(j)
		}
		dst[wi] = w
		n += bits.OnesCount64(w)
	}
	if tail := col[nw*64:]; len(tail) > 0 {
		var w uint64
		for j, v := range tail {
			w |= b2u(float64(v) > threshold) << uint(j)
		}
		dst[nw] = w
		n += bits.OnesCount64(w)
	}
	return n
}

// fillEqCodes writes the bitmap words for code == want over a
// dictionary-code window.
func fillEqCodes(dst []uint64, col []uint32, want uint32) int {
	n := 0
	nw := len(col) / 64
	for wi := 0; wi < nw; wi++ {
		chunk := col[wi*64 : wi*64+64 : wi*64+64]
		var w uint64
		for j, v := range chunk {
			w |= b2u(v == want) << uint(j)
		}
		dst[wi] = w
		n += bits.OnesCount64(w)
	}
	if tail := col[nw*64:]; len(tail) > 0 {
		var w uint64
		for j, v := range tail {
			w |= b2u(v == want) << uint(j)
		}
		dst[nw] = w
		n += bits.OnesCount64(w)
	}
	return n
}

// fillEqBools writes the bitmap words for b == want over a bool window.
func fillEqBools(dst []uint64, col []bool, want bool) int {
	n := 0
	nw := len(col) / 64
	for wi := 0; wi < nw; wi++ {
		chunk := col[wi*64 : wi*64+64 : wi*64+64]
		var w uint64
		for j, v := range chunk {
			w |= b2u(v == want) << uint(j)
		}
		dst[wi] = w
		n += bits.OnesCount64(w)
	}
	if tail := col[nw*64:]; len(tail) > 0 {
		var w uint64
		for j, v := range tail {
			w |= b2u(v == want) << uint(j)
		}
		dst[nw] = w
		n += bits.OnesCount64(w)
	}
	return n
}

// fillInSmall is the narrow-dictionary In kernel: membership of a code in
// the wanted set is one shift out of a 4-word (256-bit) lookup table that
// fits in two cache lines. The (v>>6)&3 mask keeps the index provably in
// range, so the lut access carries no bounds check.
func fillInSmall(dst []uint64, col []uint32, lut *[4]uint64) int {
	n := 0
	nw := len(col) / 64
	for wi := 0; wi < nw; wi++ {
		chunk := col[wi*64 : wi*64+64 : wi*64+64]
		var w uint64
		for j, v := range chunk {
			w |= ((lut[(v>>6)&3] >> (v & 63)) & 1) << uint(j)
		}
		dst[wi] = w
		n += bits.OnesCount64(w)
	}
	if tail := col[nw*64:]; len(tail) > 0 {
		var w uint64
		for j, v := range tail {
			w |= ((lut[(v>>6)&3] >> (v & 63)) & 1) << uint(j)
		}
		dst[nw] = w
		n += bits.OnesCount64(w)
	}
	return n
}

// fillInWide is the wide-dictionary In kernel: the wanted set is a bitset
// with one bit per dictionary code. Codes are storage-validated to be in
// range, so the per-row bitset access is a load+shift, never a hash probe.
func fillInWide(dst []uint64, col []uint32, set []uint64) int {
	n := 0
	nw := len(col) / 64
	for wi := 0; wi < nw; wi++ {
		chunk := col[wi*64 : wi*64+64 : wi*64+64]
		var w uint64
		for j, v := range chunk {
			w |= ((set[v>>6] >> (v & 63)) & 1) << uint(j)
		}
		dst[wi] = w
		n += bits.OnesCount64(w)
	}
	if tail := col[nw*64:]; len(tail) > 0 {
		var w uint64
		for j, v := range tail {
			w |= ((set[v>>6] >> (v & 63)) & 1) << uint(j)
		}
		dst[nw] = w
		n += bits.OnesCount64(w)
	}
	return n
}

// smallDictMax is the dictionary width at or below which In uses the
// register-resident 256-bit lookup table.
const smallDictMax = 256

// whereEqualsTuned is the tuned Equals leaf: the same column resolution and
// missing-value semantics as whereEquals, with fillEqCodes/fillEqBools as
// the scan.
func (t *Table) whereEqualsTuned(q Equals) (*Selection, error) {
	c, err := t.categoricalColumn(q.Column)
	if err != nil {
		return nil, err
	}
	if c.Type == Bool {
		switch q.Value {
		case "true", "false":
			want := q.Value == "true"
			col := c.bools
			return t.fillSelection(func(sel *Selection, lo, hi int) int {
				return fillEqBools(sel.words[lo/64:(hi+63)/64], col[lo:hi], want)
			}), nil
		default:
			return t.stamp(EmptySelection(t.rows)), nil
		}
	}
	code, ok := c.codeOf[q.Value]
	if !ok {
		return t.stamp(EmptySelection(t.rows)), nil
	}
	col := c.codes
	return t.fillSelection(func(sel *Selection, lo, hi int) int {
		return fillEqCodes(sel.words[lo/64:(hi+63)/64], col[lo:hi], code)
	}), nil
}

// whereInTuned is the tuned In leaf, specialized per dictionary width.
func (t *Table) whereInTuned(q In) (*Selection, error) {
	c, err := t.categoricalColumn(q.Column)
	if err != nil {
		return nil, err
	}
	if c.Type == Bool {
		var wantTrue, wantFalse bool
		for _, v := range q.Values {
			switch v {
			case "true":
				wantTrue = true
			case "false":
				wantFalse = true
			}
		}
		switch {
		case wantTrue && wantFalse:
			return t.stamp(FullSelection(t.rows)), nil
		case wantTrue, wantFalse:
			col := c.bools
			return t.fillSelection(func(sel *Selection, lo, hi int) int {
				return fillEqBools(sel.words[lo/64:(hi+63)/64], col[lo:hi], wantTrue)
			}), nil
		default:
			return t.stamp(EmptySelection(t.rows)), nil
		}
	}
	col := c.codes
	if len(c.dict) <= smallDictMax {
		var lut [4]uint64
		found := false
		for _, v := range q.Values {
			if code, ok := c.codeOf[v]; ok {
				lut[code>>6] |= 1 << (code & 63)
				found = true
			}
		}
		if !found {
			return t.stamp(EmptySelection(t.rows)), nil
		}
		return t.fillSelection(func(sel *Selection, lo, hi int) int {
			return fillInSmall(sel.words[lo/64:(hi+63)/64], col[lo:hi], &lut)
		}), nil
	}
	set := make([]uint64, (len(c.dict)+63)/64)
	found := false
	for _, v := range q.Values {
		if code, ok := c.codeOf[v]; ok {
			set[code>>6] |= 1 << (code & 63)
			found = true
		}
	}
	if !found {
		return t.stamp(EmptySelection(t.rows)), nil
	}
	return t.fillSelection(func(sel *Selection, lo, hi int) int {
		return fillInWide(sel.words[lo/64:(hi+63)/64], col[lo:hi], set)
	}), nil
}

// whereRangeTuned is the tuned Range leaf, with the generic kernel's
// type-resolution errors.
func (t *Table) whereRangeTuned(q Range) (*Selection, error) {
	c, err := t.Column(q.Column)
	if err != nil {
		return nil, err
	}
	switch c.Type {
	case Float64:
		col := c.floats
		return t.fillSelection(func(sel *Selection, lo, hi int) int {
			return fillRangeFloats(sel.words[lo/64:(hi+63)/64], col[lo:hi], q.Low, q.High)
		}), nil
	case Int64:
		col := c.ints
		return t.fillSelection(func(sel *Selection, lo, hi int) int {
			return fillRangeInts(sel.words[lo/64:(hi+63)/64], col[lo:hi], q.Low, q.High)
		}), nil
	default:
		return nil, fmt.Errorf("%w: %s is %s, not numeric", ErrTypeMismatch, c.Name, c.Type)
	}
}

// whereGreaterTuned is the tuned GreaterThan leaf.
func (t *Table) whereGreaterTuned(q GreaterThan) (*Selection, error) {
	c, err := t.Column(q.Column)
	if err != nil {
		return nil, err
	}
	switch c.Type {
	case Float64:
		col := c.floats
		return t.fillSelection(func(sel *Selection, lo, hi int) int {
			return fillGtFloats(sel.words[lo/64:(hi+63)/64], col[lo:hi], q.Threshold)
		}), nil
	case Int64:
		col := c.ints
		return t.fillSelection(func(sel *Selection, lo, hi int) int {
			return fillGtInts(sel.words[lo/64:(hi+63)/64], col[lo:hi], q.Threshold)
		}), nil
	default:
		return nil, fmt.Errorf("%w: %s is %s, not numeric", ErrTypeMismatch, c.Name, c.Type)
	}
}
