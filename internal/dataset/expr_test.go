package dataset

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// This file tests the derived-column expression engine: vectorized evaluation
// against a row-at-a-time reference, pool parity (including the sequential
// cutoff over multi-morsel tables), Derive's table semantics, and the JSON
// codec.

// refEvalExpr is the row-at-a-time reference evaluator. It applies the same
// IEEE operations in the same order as the compiled program, so agreement is
// exact, not approximate.
func refEvalExpr(t *testing.T, tab *Table, e Expr, row int) float64 {
	t.Helper()
	switch q := e.(type) {
	case Col:
		c, err := tab.Column(q.Name)
		if err != nil {
			t.Fatalf("reference: %v", err)
		}
		v, err := c.Float(row)
		if err != nil {
			t.Fatalf("reference: %v", err)
		}
		return v
	case Const:
		return q.Value
	case Binary:
		l, r := refEvalExpr(t, tab, q.L, row), refEvalExpr(t, tab, q.R, row)
		switch q.Op {
		case OpAdd:
			return l + r
		case OpSub:
			return l - r
		case OpMul:
			return l * r
		default:
			return l / r
		}
	case Bucket:
		v := refEvalExpr(t, tab, q.Arg, row)
		return math.Floor(v/q.Width) * q.Width
	default:
		t.Fatalf("reference: unknown expression %T", e)
		return 0
	}
}

// randomExpr draws an expression tree over the numeric columns of
// randomTable. Divisions and zero-width buckets are allowed: Inf and NaN must
// round-trip through the vectorized path identically too.
func randomExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(3) {
		case 0:
			return Col{Name: "score"}
		case 1:
			return Col{Name: "level"}
		default:
			return Const{Value: math.Round(rng.NormFloat64()*100) / 10}
		}
	}
	if rng.Intn(5) == 0 {
		return Bucket{Arg: randomExpr(rng, depth-1), Width: float64(1 + rng.Intn(10))}
	}
	op := []BinaryOp{OpAdd, OpSub, OpMul, OpDiv}[rng.Intn(4)]
	return Binary{Op: op, L: randomExpr(rng, depth-1), R: randomExpr(rng, depth-1)}
}

// sameFloat compares bit patterns so NaN == NaN and -0 != 0.
func sameFloat(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestEvalExprMatchesReferenceRandomized is the derived-column property test:
// random expression trees over random tables must evaluate, element for
// element, exactly as the row-at-a-time reference.
func TestEvalExprMatchesReferenceRandomized(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tab := randomTable(rng)
		e := randomExpr(rng, 3)
		got, err := tab.EvalExpr(e)
		if err != nil {
			t.Fatalf("seed %d: EvalExpr(%s): %v", seed, e.Describe(), err)
		}
		if len(got) != tab.NumRows() {
			t.Fatalf("seed %d: %d values for %d rows", seed, len(got), tab.NumRows())
		}
		for row := range got {
			want := refEvalExpr(t, tab, e, row)
			if !sameFloat(got[row], want) {
				t.Fatalf("seed %d: %s at row %d: got %v, want %v", seed, e.Describe(), row, got[row], want)
			}
		}
	}
}

// TestEvalExprPoolParity evaluates one expression over a table spanning
// several morsels on 1-, 2- and 8-worker pools: identical vectors everywhere.
// The 1-worker case over a multi-morsel table is the regression test for the
// sequential cutoff path, which must walk morsel-at-a-time rather than hand
// the whole table to one morsel-sized scratch buffer.
func TestEvalExprPoolParity(t *testing.T) {
	rows := 3*morselRows + 17
	vals := make([]float64, rows)
	rng := rand.New(rand.NewSource(3))
	for i := range vals {
		vals[i] = rng.NormFloat64() * 50
	}
	tab, err := NewTable(NewFloatColumn("v", vals))
	if err != nil {
		t.Fatal(err)
	}
	e := Bucket{
		Arg:   Binary{Op: OpAdd, L: Binary{Op: OpMul, L: Col{Name: "v"}, R: Const{Value: 52}}, R: Const{Value: 7}},
		Width: 25,
	}
	want, err := tab.EvalExpr(e) // default pool
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(workers)
		tab.SetPool(p)
		got, err := tab.EvalExpr(e)
		if err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
		for i := range got {
			if !sameFloat(got[i], want[i]) {
				t.Fatalf("%d workers: row %d: %v vs %v", workers, i, got[i], want[i])
			}
		}
		p.Close()
	}
}

// TestDeriveSemantics pins Derive's table contract: a fresh table with the
// new Float64 column appended, the source table untouched, errors on unknown
// columns, non-numeric columns, and duplicate names.
func TestDeriveSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tab := randomTable(rng)
	cols := tab.NumColumns()
	derived, err := tab.Derive("twice", Binary{Op: OpMul, L: Col{Name: "score"}, R: Const{Value: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumColumns() != cols {
		t.Fatalf("Derive mutated the source table: %d columns, had %d", tab.NumColumns(), cols)
	}
	if derived.NumColumns() != cols+1 || derived.NumRows() != tab.NumRows() {
		t.Fatalf("derived table is %dx%d, want %dx%d", derived.NumRows(), derived.NumColumns(), tab.NumRows(), cols+1)
	}
	twice, err := derived.Floats("twice")
	if err != nil {
		t.Fatal(err)
	}
	score, err := tab.Floats("score")
	if err != nil {
		t.Fatal(err)
	}
	for i := range twice {
		if !sameFloat(twice[i], score[i]*2) {
			t.Fatalf("row %d: %v, want %v", i, twice[i], score[i]*2)
		}
	}

	if _, err := tab.Derive("x", Col{Name: "no_such_column"}); err == nil {
		t.Error("unknown column: want error")
	}
	if _, err := tab.Derive("x", Col{Name: "color"}); err == nil {
		t.Error("categorical operand: want error")
	}
	if _, err := tab.Derive("score", Const{Value: 1}); err == nil {
		t.Error("duplicate column name: want error")
	}
}

// TestExprJSONRoundTrip marshals and re-marshals every node kind (and a
// nested tree), requiring identical wire forms and identical Describe text.
func TestExprJSONRoundTrip(t *testing.T) {
	exprs := []Expr{
		Col{Name: "age"},
		Const{Value: -2.5},
		Binary{Op: OpAdd, L: Col{Name: "a"}, R: Const{Value: 1}},
		Binary{Op: OpSub, L: Col{Name: "a"}, R: Col{Name: "b"}},
		Binary{Op: OpMul, L: Const{Value: 52}, R: Col{Name: "hours"}},
		Binary{Op: OpDiv, L: Col{Name: "pay"}, R: Col{Name: "hours"}},
		Bucket{Arg: Col{Name: "age"}, Width: 10},
		Bucket{
			Arg:   Binary{Op: OpMul, L: Col{Name: "hours"}, R: Const{Value: 52}},
			Width: 250,
		},
	}
	for _, e := range exprs {
		t.Run(e.Describe(), func(t *testing.T) {
			first, err := MarshalExpr(e)
			if err != nil {
				t.Fatalf("MarshalExpr: %v", err)
			}
			decoded, err := UnmarshalExpr(first)
			if err != nil {
				t.Fatalf("UnmarshalExpr(%s): %v", first, err)
			}
			second, err := MarshalExpr(decoded)
			if err != nil {
				t.Fatalf("re-MarshalExpr: %v", err)
			}
			if string(first) != string(second) {
				t.Errorf("round trip not lossless:\n first: %s\nsecond: %s", first, second)
			}
			if decoded.Describe() != e.Describe() {
				t.Errorf("Describe changed: %q -> %q", e.Describe(), decoded.Describe())
			}
		})
	}
}

// TestExprJSONStrictness rejects malformed wire forms and unencodable trees.
func TestExprJSONStrictness(t *testing.T) {
	bad := []struct {
		name string
		in   string
		want string
	}{
		{"missing type", `{}`, "missing a type"},
		{"unknown type", `{"expr": "mod", "left": {"expr": "col", "column": "a"}}`, "unknown expression"},
		{"col without column", `{"expr": "col"}`, "requires a column"},
		{"const without value", `{"expr": "const"}`, "requires a value"},
		{"add without right", `{"expr": "add", "left": {"expr": "const", "value": 1}}`, "right operand"},
		{"bucket without width", `{"expr": "bucket", "arg": {"expr": "col", "column": "a"}}`, "requires a width"},
		{"not json", `{"expr": `, "parsing expression JSON"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := UnmarshalExpr([]byte(tc.in)); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("UnmarshalExpr(%s) = %v, want error containing %q", tc.in, err, tc.want)
			}
		})
	}
	if _, err := MarshalExpr(nil); err == nil {
		t.Error("MarshalExpr(nil): want error")
	}
	if _, err := MarshalExpr(Binary{Op: "mod", L: Col{Name: "a"}, R: Col{Name: "b"}}); err == nil {
		t.Error("MarshalExpr of unknown operator: want error")
	}
	if _, err := MarshalExpr(Binary{Op: OpAdd, L: Col{Name: "a"}}); err == nil {
		t.Error("MarshalExpr with nil operand: want error")
	}
}
