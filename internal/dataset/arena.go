package dataset

import (
	"sync"
	"sync/atomic"
)

// This file is the selection arena: a sync.Pool-backed recycler for the
// bitmap storage behind Selections. Every Selection over an n-row table
// carries exactly (n+63)/64 words, so all selections of one table are
// interchangeable storage — the arena exploits that by pooling whole
// released Selections (header + words) and re-issuing them to the next
// kernel. In steady state (a served dataset under load, or a session
// re-filtering step after step) the predicate kernels allocate zero words:
// every compile draws its output and its And/Or intermediates from the pool
// and the intermediates go straight back.
//
// Ownership contract: Release may only be called by a creator that has
// exclusive ownership of the selection — nothing else may retain it. The
// combinator loop inside Table.where releases its intermediates (they never
// escape), Filter/CountWhere release their private compile, and benchmarks
// release explicitly. Selections handed to a SelectionCache are detached
// from the arena first (detach), so a cached — and therefore arbitrarily
// shared — bitmap can never be recycled under a reader.

// WordArena recycles the Selections of one table size. All methods are safe
// for concurrent use; a server shares one arena per registered dataset
// across every session exploring it.
type WordArena struct {
	// words is the word count of every pooled selection: (rows+63)/64 for
	// the table the arena was sized for. Tables whose row count disagrees
	// (hold-out halves, samples) silently fall back to heap allocation.
	words int
	rows  int
	pool  sync.Pool

	fresh    atomic.Uint64 // selections built with freshly allocated words
	recycled atomic.Uint64 // selections re-issued from the pool
	returned atomic.Uint64 // selections released back into the pool
}

// ArenaStats is a snapshot of an arena's counters — the wire form served by
// /debug/metrics and printed by awarebench's allocation report. In steady
// state FreshSelections stops growing: every new selection is a recycled
// one.
type ArenaStats struct {
	Rows               int    `json:"rows"`
	WordsPerSelection  int    `json:"words_per_selection"`
	FreshSelections    uint64 `json:"fresh_selections"`
	RecycledSelections uint64 `json:"recycled_selections"`
	ReturnedSelections uint64 `json:"returned_selections"`
}

// NewWordArena builds an arena for selections over rows rows.
func NewWordArena(rows int) *WordArena {
	if rows < 0 {
		rows = 0
	}
	return &WordArena{words: (rows + 63) / 64, rows: rows}
}

// Rows returns the row count the arena was sized for.
func (a *WordArena) Rows() int { return a.rows }

// Stats returns a snapshot of the arena's counters.
func (a *WordArena) Stats() ArenaStats {
	return ArenaStats{
		Rows:               a.rows,
		WordsPerSelection:  a.words,
		FreshSelections:    a.fresh.Load(),
		RecycledSelections: a.recycled.Load(),
		ReturnedSelections: a.returned.Load(),
	}
}

// newSelection returns an all-clear selection over n rows, reusing a
// released one when the pool has it. n must satisfy (n+63)/64 == a.words
// (callers guard via Table.execArena).
func (a *WordArena) newSelection(n int) *Selection {
	if s, ok := a.pool.Get().(*Selection); ok {
		a.recycled.Add(1)
		s.n = n
		s.count = 0
		s.pool = nil
		s.released = false
		return s
	}
	a.fresh.Add(1)
	return &Selection{n: n, words: make([]uint64, a.words), arena: a}
}

// Release returns the selection's storage to its arena. It is a no-op for
// heap selections (no arena, e.g. cache-detached bitmaps), so callers can
// release unconditionally. The caller must own the selection exclusively:
// after Release the words may be handed to any concurrent kernel. Releasing
// twice is tolerated (the second call no-ops) as long as the selection was
// not re-issued in between.
func (s *Selection) Release() {
	if s == nil || s.arena == nil || s.released {
		return
	}
	a := s.arena
	if len(s.words) != a.words {
		// Shouldn't happen (arenas are per-table); drop to the heap rather
		// than poison the pool with a wrong-sized slice.
		s.arena = nil
		return
	}
	s.released = true
	// Zero on return, not on re-issue: the generic OR-style kernels and the
	// Matches fallback rely on all-clear words, and zeroing here keeps the
	// re-issue path allocation- and work-free.
	for i := range s.words {
		s.words[i] = 0
	}
	s.count = 0
	a.returned.Add(1)
	a.pool.Put(s)
}

// detach permanently severs the selection from its arena, making Release a
// no-op forever. The SelectionCache detaches every bitmap it stores: cached
// selections are shared with arbitrarily many sessions for the lifetime of
// the cache, so they must never be recyclable.
func (s *Selection) detach() { s.arena = nil }

// sibling returns an all-clear selection with the same span as s, drawn
// from s's arena when it has one — the allocation the selection algebra
// (And/Or/Not) uses for its outputs, so algebra over arena-backed inputs
// stays arena-backed.
func (s *Selection) sibling() *Selection {
	if a := s.arena; a != nil {
		return a.newSelection(s.n)
	}
	return newSelection(s.n)
}

// SetArena pins the table's predicate kernels to the arena: compiled
// selections and combinator intermediates draw their words from it, and
// Release returns them. Nil detaches the table (kernels allocate from the
// heap, the pre-arena behavior). An arena sized for a different row count
// is ignored at use sites, so inheriting tables of other shapes is safe.
// Like SetPool it applies table-wide and is safe against concurrent
// kernels.
func (t *Table) SetArena(a *WordArena) { t.arena.Store(a) }

// Arena returns the table's arena, or nil.
func (t *Table) Arena() *WordArena { return t.arena.Load() }

// execArena resolves the arena the table's kernels may allocate from: the
// pinned one, only when its geometry matches the table.
func (t *Table) execArena() *WordArena {
	if a := t.arena.Load(); a != nil && a.words == (t.rows+63)/64 {
		return a
	}
	return nil
}

// newSel returns an all-clear selection over the table's rows — from the
// table's arena when one is pinned — stamped with the table's pool.
func (t *Table) newSel() *Selection {
	if a := t.execArena(); a != nil {
		s := a.newSelection(t.rows)
		s.pool = t.execPool()
		return s
	}
	return t.stamp(newSelection(t.rows))
}

// fullSel is newSel with every row set (the And combinator's identity).
func (t *Table) fullSel() *Selection {
	s := t.newSel()
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.maskTail()
	s.count = s.n
	return s
}
