package dataset

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// This file is the differential test bed for the morsel-parallel execution
// layer: for random tables spanning the morsel and word boundaries (1 row to
// 200k rows) and random predicate trees over all seven predicate types, every
// parallel kernel must be bit-identical — same bitmap words, same counts,
// same aggregation outputs, same float order — to the sequential reference (a
// 1-worker pool runs the identical kernel bodies on the calling goroutine).

// randomSizedTable is randomTable with a caller-chosen row count, so the
// parallel tests can aim at morsel boundaries instead of word boundaries.
func randomSizedTable(rng *rand.Rand, rows int) *Table {
	cats := []string{"red", "green", "blue", "violet"}
	strs := make([]string, rows)
	bools := make([]bool, rows)
	floats := make([]float64, rows)
	ints := make([]int64, rows)
	for i := 0; i < rows; i++ {
		strs[i] = cats[rng.Intn(len(cats))]
		bools[i] = rng.Intn(2) == 0
		floats[i] = rng.NormFloat64() * 10
		ints[i] = int64(rng.Intn(40) - 20)
	}
	tab, err := NewTable(
		NewCategoricalColumn("color", strs),
		NewBoolColumn("flag", bools),
		NewFloatColumn("score", floats),
		NewIntColumn("level", ints),
	)
	if err != nil {
		panic(err)
	}
	return tab
}

// parallelTestSizes spans the cutoff and alignment edge cases: sub-word,
// word-boundary, exactly one morsel, just past one morsel, several morsels,
// and a large non-aligned size.
func parallelTestSizes(rng *rand.Rand) []int {
	sizes := []int{1, 63, 64, 65, morselRows - 1, morselRows, morselRows + 1, 3 * morselRows}
	sizes = append(sizes, 1+rng.Intn(200_000), 1+rng.Intn(200_000))
	return sizes
}

// sameSelection asserts two selections are bit-identical: same span, same
// cached count, same words.
func sameSelection(t *testing.T, ctx string, want, got *Selection) {
	t.Helper()
	if want.n != got.n || want.count != got.count {
		t.Fatalf("%s: span/count differ: want %d/%d, got %d/%d", ctx, want.n, want.count, got.n, got.count)
	}
	if !reflect.DeepEqual(want.words, got.words) {
		t.Fatalf("%s: bitmap words differ", ctx)
	}
}

// TestParallelMatchesSequential is the property test of the parallel engine:
// across pool sizes 1, 2 and 8, Where and every view aggregation over random
// tables and random predicate trees must be bit-identical to the 1-worker
// sequential reference.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	seqPool := NewPool(1)
	defer seqPool.Close()
	pools := []*Pool{NewPool(2), NewPool(8)}
	defer pools[0].Close()
	defer pools[1].Close()

	for _, rows := range parallelTestSizes(rng) {
		tab := randomSizedTable(rng, rows)
		for trial := 0; trial < 4; trial++ {
			pred := randomPredicate(rng, 2)
			ctx := fmt.Sprintf("rows=%d trial=%d pred=%s", rows, trial, pred.Describe())

			tab.SetPool(seqPool)
			wantSel, wantErr := tab.Where(pred)
			var wantCounts, wantBins []int
			var wantGroups []GroupCount
			var wantFloats []float64
			if wantErr == nil {
				view := View{table: tab, sel: wantSel}
				wantCounts, _ = view.CountsFor("color", []string{"red", "green", "blue", "violet"})
				wantGroups, _ = view.GroupBy("color")
				wantBins, _ = view.BinCounts("score", 10)
				wantFloats, _ = view.Floats("score")
			}

			for _, pool := range pools {
				tab.SetPool(pool)
				gotSel, gotErr := tab.Where(pred)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("%s: error parity broke: sequential %v, %d workers %v",
						ctx, wantErr, pool.Workers(), gotErr)
				}
				if wantErr != nil {
					continue
				}
				sameSelection(t, fmt.Sprintf("%s workers=%d", ctx, pool.Workers()), wantSel, gotSel)

				view := View{table: tab, sel: gotSel}
				gotCounts, err := view.CountsFor("color", []string{"red", "green", "blue", "violet"})
				if err != nil || !reflect.DeepEqual(wantCounts, gotCounts) {
					t.Fatalf("%s workers=%d: CountsFor %v (err %v), want %v", ctx, pool.Workers(), gotCounts, err, wantCounts)
				}
				gotGroups, err := view.GroupBy("color")
				if err != nil || !reflect.DeepEqual(wantGroups, gotGroups) {
					t.Fatalf("%s workers=%d: GroupBy %v (err %v), want %v", ctx, pool.Workers(), gotGroups, err, wantGroups)
				}
				gotBins, err := view.BinCounts("score", 10)
				if err != nil || !reflect.DeepEqual(wantBins, gotBins) {
					t.Fatalf("%s workers=%d: BinCounts %v (err %v), want %v", ctx, pool.Workers(), gotBins, err, wantBins)
				}
				gotFloats, err := view.Floats("score")
				if err != nil || !reflect.DeepEqual(wantFloats, gotFloats) {
					t.Fatalf("%s workers=%d: Floats differ (err %v)", ctx, pool.Workers(), err)
				}
			}
		}
	}
}

// TestParallelSelectionAlgebra checks the parallel word-range And/Or/Not
// against the sequential reference on multi-morsel bitmaps, including the
// unaligned tail.
func TestParallelSelectionAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seqPool := NewPool(1)
	defer seqPool.Close()
	parPool := NewPool(8)
	defer parPool.Close()

	for _, rows := range []int{morselRows, 2*morselRows + 17, 100_003} {
		a := newSelection(rows)
		b := newSelection(rows)
		for i := 0; i < rows; i++ {
			if rng.Intn(2) == 0 {
				a.setBit(i)
			}
			if rng.Intn(3) == 0 {
				b.setBit(i)
			}
		}
		a.recount()
		b.recount()
		sameSelection(t, "and", a.andWith(b, seqPool), a.andWith(b, parPool))
		sameSelection(t, "or", a.orWith(b, seqPool), a.orWith(b, parPool))
		sameSelection(t, "not", a.notWith(seqPool), a.notWith(parPool))
		if got, want := a.notWith(parPool).Count(), rows-a.Count(); got != want {
			t.Fatalf("not count %d, want %d", got, want)
		}
	}
}

// TestPoolRunCoversEveryIndex checks the work-distribution contract: Run
// executes fn exactly once per index, for index counts around the worker
// count and far above it.
func TestPoolRunCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			var mu sync.Mutex
			seen := make([]int, n)
			p.Run(n, func(i int) {
				mu.Lock()
				seen[i]++
				mu.Unlock()
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d executed %d times", workers, n, i, c)
				}
			}
		}
		p.Close()
	}
}

// TestPoolRunPropagatesPanic ensures a panic inside a helper resurfaces on
// the calling goroutine instead of crashing a worker.
func TestPoolRunPropagatesPanic(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic did not propagate out of Run")
		}
	}()
	p.Run(64, func(i int) {
		if i == 13 {
			panic("boom")
		}
	})
}

// TestPoolStatsCounters checks the observable counters: small inputs hit the
// sequential cutoff, multi-morsel inputs process morsels, and Workers reports
// the configured parallelism (GOMAXPROCS when sized automatically).
func TestPoolStatsCounters(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	rng := rand.New(rand.NewSource(9))

	small := randomSizedTable(rng, 100)
	small.SetPool(p)
	if _, err := small.Where(Equals{Column: "color", Value: "red"}); err != nil {
		t.Fatal(err)
	}
	if s := p.Stats(); s.SequentialCutoffHits == 0 {
		t.Errorf("sub-morsel input did not count a cutoff hit: %+v", s)
	}

	big := randomSizedTable(rng, 2*morselRows+5)
	big.SetPool(p)
	if _, err := big.Where(Equals{Column: "color", Value: "red"}); err != nil {
		t.Fatal(err)
	}
	if s := p.Stats(); s.MorselsProcessed < 3 {
		t.Errorf("multi-morsel input processed %d morsels, want >= 3", s.MorselsProcessed)
	}
	auto := NewPool(0)
	if auto.Workers() < 1 {
		t.Error("auto-sized pool has no workers")
	}
	auto.Close()
	if p.Stats().Workers != 2 {
		t.Errorf("Workers = %d, want 2", p.Stats().Workers)
	}
}

// TestSelectionAlgebraInheritsTablePool: selections compiled by a pinned
// table carry that pool, so public And/Or/Not on them (the holdout
// complement path uses Selection.Not) stay pinned instead of escaping to the
// process-wide DefaultPool.
func TestSelectionAlgebraInheritsTablePool(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	tab := randomSizedTable(rand.New(rand.NewSource(21)), 2*morselRows)
	tab.SetPool(p)
	sel, err := tab.Where(Equals{Column: "color", Value: "red"})
	if err != nil {
		t.Fatal(err)
	}
	for name, derived := range map[string]*Selection{
		"where": sel,
		"not":   sel.Not(),
		"and":   sel.And(sel.Not()),
		"or":    sel.Or(sel),
		"full":  mustWhere(t, tab, nil),
	} {
		if derived.execPool() != p {
			t.Errorf("%s selection did not inherit the table's pool", name)
		}
	}
	before := p.Stats().MorselsProcessed
	sel.Not()
	if after := p.Stats().MorselsProcessed; after <= before {
		t.Errorf("Not on a pinned multi-morsel selection did not run on the pinned pool (morsels %d -> %d)", before, after)
	}
}

func mustWhere(t *testing.T, tab *Table, p Predicate) *Selection {
	t.Helper()
	sel, err := tab.Where(p)
	if err != nil {
		t.Fatal(err)
	}
	return sel
}

// TestSetPoolPropagatesToDerivedTables: Select (and with it holdout splits,
// samples, materialized views) inherits the parent table's pinned pool.
func TestSetPoolPropagatesToDerivedTables(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	tab := randomSizedTable(rand.New(rand.NewSource(3)), 50)
	tab.SetPool(p)
	sub, err := tab.Select([]int{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if sub.execPool() != p {
		t.Error("Select did not inherit the parent's pool")
	}
	tab.SetPool(nil)
	if tab.execPool() != DefaultPool() {
		t.Error("SetPool(nil) did not restore the default pool")
	}
}
