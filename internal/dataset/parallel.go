package dataset

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the morsel-parallel execution layer of the substrate
// (morsel-driven parallelism in the style of HyPer): tables are split into
// word-aligned morsels of morselRows rows, and a small shared worker pool
// executes the hot kernels — predicate compilation (Table.Where), selection
// algebra (And/Or/Not) and the view aggregations — one morsel per task.
//
// The design invariant is that parallel execution is bit-identical to
// sequential execution:
//
//   - selection kernels give each morsel a disjoint, word-aligned range of the
//     output bitmap, so workers never share a word and no merge step exists;
//   - aggregations accumulate into per-morsel partials that are merged in
//     morsel order after the pool drains;
//   - Floats writes each morsel's values at a precomputed prefix-sum offset,
//     preserving row order exactly.
//
// Inputs smaller than one morsel (and pools pinned to one worker) run the
// very same kernel bodies sequentially on the calling goroutine — that
// sequential path is the reference the differential tests compare against,
// and the cutoff keeps small-table latency free of scheduling overhead.

const (
	// morselRows is the number of rows per morsel. It is a multiple of 64 so
	// every morsel boundary falls on a Selection word boundary, which is what
	// lets workers fill disjoint word ranges of one bitmap without locking.
	morselRows = 16384
	// morselWords is the morsel size in Selection words, used when the unit of
	// work is a word range (selection algebra) rather than a row range.
	morselWords = morselRows / 64
)

// PoolStats is a snapshot of a pool's execution counters.
type PoolStats struct {
	// Workers is the pool's parallelism (including the calling goroutine).
	Workers int `json:"workers"`
	// TasksExecuted counts closures handed to pool worker goroutines.
	TasksExecuted uint64 `json:"tasks_executed"`
	// MorselsProcessed counts morsels executed through Run (by workers and by
	// the calling goroutine alike).
	MorselsProcessed uint64 `json:"morsels_processed"`
	// SequentialCutoffHits counts kernel invocations that skipped the pool
	// because the input was smaller than one morsel (or the pool is pinned to
	// a single worker).
	SequentialCutoffHits uint64 `json:"sequential_cutoff_hits"`
	// HelperHandoffs counts helper closures accepted by an idle background
	// worker; HelperRejections counts the attempts that found every worker
	// busy, so the calling goroutine kept the morsels for itself. Their ratio
	// is the pool's contention signal.
	HelperHandoffs   uint64 `json:"helper_handoffs"`
	HelperRejections uint64 `json:"helper_rejections"`
	// QueueWaitNs is the cumulative delay between handing a helper to the
	// task channel and the worker starting it — the pool's queueing time. It
	// stays near zero by design: handoff is non-blocking, so helpers never
	// queue behind other callers' work, only behind the worker's wakeup.
	QueueWaitNs uint64 `json:"queue_wait_ns"`
}

// Pool is a bounded worker pool shared by the parallel kernels. A pool of W
// workers runs W-1 background goroutines; the calling goroutine always
// participates, so a Pool with Workers()==1 executes everything sequentially
// on the caller — the deterministic-debugging configuration (-workers 1).
//
// Pools are safe for concurrent use: any number of sessions (or HTTP request
// goroutines) may run kernels over one pool at once. Work is handed to
// background workers only when one is idle; under contention a caller simply
// runs its own morsels, so Run never blocks waiting for another caller's work
// to finish and nested use cannot deadlock.
type Pool struct {
	workers int
	tasks   chan func()
	done    chan struct{}
	once    sync.Once

	tasksExecuted    atomic.Uint64
	morselsProcessed atomic.Uint64
	cutoffHits       atomic.Uint64
	helperHandoffs   atomic.Uint64
	helperRejections atomic.Uint64
	queueWaitNs      atomic.Uint64
}

// NewPool builds a pool with the given parallelism; workers <= 0 means
// GOMAXPROCS. Close releases the background goroutines when the pool is no
// longer needed (tests); the process-wide DefaultPool is never closed.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		tasks:   make(chan func()),
		done:    make(chan struct{}),
	}
	for i := 0; i < workers-1; i++ {
		go p.worker()
	}
	return p
}

var defaultPool struct {
	once sync.Once
	p    *Pool
}

// DefaultPool returns the process-wide shared pool, sized by GOMAXPROCS and
// built on first use. Tables without an explicit SetPool execute on it.
func DefaultPool() *Pool {
	defaultPool.once.Do(func() { defaultPool.p = NewPool(0) })
	return defaultPool.p
}

// Workers returns the pool's parallelism (including the calling goroutine).
func (p *Pool) Workers() int { return p.workers }

// Stats returns a snapshot of the pool's cumulative counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Workers:              p.workers,
		TasksExecuted:        p.tasksExecuted.Load(),
		MorselsProcessed:     p.morselsProcessed.Load(),
		SequentialCutoffHits: p.cutoffHits.Load(),
		HelperHandoffs:       p.helperHandoffs.Load(),
		HelperRejections:     p.helperRejections.Load(),
		QueueWaitNs:          p.queueWaitNs.Load(),
	}
}

// Close stops the pool's background workers. Runs in flight finish (the
// calling goroutine drains remaining morsels itself); later Runs execute
// sequentially on their callers.
func (p *Pool) Close() { p.once.Do(func() { close(p.done) }) }

func (p *Pool) worker() {
	for {
		select {
		case fn := <-p.tasks:
			p.tasksExecuted.Add(1)
			fn()
		case <-p.done:
			return
		}
	}
}

// Run executes fn(i) for every i in [0, n), distributing the iterations over
// the pool. The calling goroutine always participates; up to Workers()-1 idle
// background workers join it. Run returns when every iteration has finished.
// Iterations must be independent (they run concurrently, in no particular
// order); determinism of results is the callers' responsibility and is
// achieved by writing to disjoint or order-merged outputs.
func (p *Pool) Run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	body := func(i int) {
		p.morselsProcessed.Add(1)
		fn(i)
	}
	if n == 1 || p.workers == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var next atomic.Int64
	loop := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			body(i)
		}
	}
	var (
		wg       sync.WaitGroup
		panicked atomic.Pointer[any]
	)
	helpers := p.workers - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	for i := 0; i < helpers; i++ {
		wg.Add(1)
		// handedAt is written before the channel send and read by the worker
		// after the receive, so the send's happens-before edge covers it.
		handedAt := time.Now()
		helper := func() {
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &r)
				}
				wg.Done()
			}()
			if wait := time.Since(handedAt); wait > 0 {
				p.queueWaitNs.Add(uint64(wait.Nanoseconds()))
			}
			loop()
		}
		// Hand the helper to an idle worker; if none is free (other callers
		// own them right now), this caller simply does the work itself.
		select {
		case p.tasks <- helper:
			p.helperHandoffs.Add(1)
		case <-p.done:
			wg.Done()
		default:
			p.helperRejections.Add(1)
			wg.Done()
		}
	}
	loop()
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(*r)
	}
}

// chunks returns how many chunk-sized pieces cover n items.
func chunks(n, chunk int) int { return (n + chunk - 1) / chunk }

// runCounted splits [0, n) into chunk-aligned ranges, runs fn over each —
// on the pool when there is more than one chunk — and returns the sum of the
// per-range counts, accumulated in range order. fn must only touch state
// belonging to its range; the count it returns is merged by the caller.
func runCounted(p *Pool, n, chunk int, fn func(lo, hi int) int) int {
	if n <= 0 {
		return 0
	}
	m := chunks(n, chunk)
	if m <= 1 || p.workers == 1 {
		p.cutoffHits.Add(1)
		return fn(0, n)
	}
	counts := make([]int, m)
	p.Run(m, func(i int) {
		lo := i * chunk
		hi := min(lo+chunk, n)
		counts[i] = fn(lo, hi)
	})
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}

// reduceInts splits the n rows into morsels, gives each morsel a fresh
// width-sized accumulator, and merges the per-morsel partials in morsel order
// — the deterministic reduction behind the parallel aggregations (per-code
// counts, per-bin counts, bool tallies).
func reduceInts(p *Pool, n, width int, fn func(lo, hi int, acc []int)) []int {
	acc := make([]int, width)
	if n <= 0 {
		return acc
	}
	m := chunks(n, morselRows)
	if m <= 1 || p.workers == 1 {
		p.cutoffHits.Add(1)
		fn(0, n, acc)
		return acc
	}
	partials := make([][]int, m)
	p.Run(m, func(i int) {
		part := make([]int, width)
		lo := i * morselRows
		hi := min(lo+morselRows, n)
		fn(lo, hi, part)
		partials[i] = part
	})
	for _, part := range partials {
		for k, v := range part {
			acc[k] += v
		}
	}
	return acc
}

// fillSelection builds a Selection over the table's rows by running fill over
// word-aligned row ranges — in parallel above the morsel cutoff. fill sets
// bits only within [lo, hi) (lo is always word-aligned, so morsels write
// disjoint bitmap words and no merge step exists) and returns how many bits it
// set; the per-morsel counts are summed in morsel order into the selection's
// cached count.
func (t *Table) fillSelection(fill func(sel *Selection, lo, hi int) int) *Selection {
	sel := t.newSel()
	sel.count = runCounted(sel.pool, t.rows, morselRows, func(lo, hi int) int {
		return fill(sel, lo, hi)
	})
	return sel
}
