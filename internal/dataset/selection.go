package dataset

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"aware/internal/stats"
)

// This file is the vectorized execution path of the substrate. Instead of
// interpreting a Predicate row by row (Predicate.Matches, kept as the
// reference implementation for differential testing), each predicate compiles
// into a columnar kernel producing a Selection — a dense bitmap over the
// table's row indices. Boolean combinators become word-wise bitmap operations
// (And = intersect, Or = union, Not = flip), and a View pairs the immutable
// table with a Selection so that counting, histogramming and numeric
// extraction iterate set bits without ever materializing a sub-table.

// Selection is an immutable dense bitmap over the rows of a table: bit i is
// set when row i is selected. Selections are created by the predicate kernels
// (Table.Where) and combined with And/Or/Not, each of which returns a new
// Selection; once returned, a Selection is never mutated, so it may be shared
// freely across goroutines and cached across sessions.
type Selection struct {
	n     int
	words []uint64
	count int

	// pool is the execution pool the selection was built on — an inherited
	// hint so that algebra on a selection (And/Or/Not) keeps running where its
	// table is pinned, even though a Selection carries no table reference.
	// Nil means the process-wide DefaultPool.
	pool *Pool

	// arena, when non-nil, is the WordArena the selection's storage came from
	// and may be returned to via Release. released guards against double
	// returns; see arena.go for the ownership contract.
	arena    *WordArena
	released bool
}

// execPool resolves the pool the selection's algebra runs on.
func (s *Selection) execPool() *Pool {
	if s.pool != nil {
		return s.pool
	}
	return DefaultPool()
}

// newSelection returns an all-clear selection over n rows.
func newSelection(n int) *Selection {
	return &Selection{n: n, words: make([]uint64, (n+63)/64)}
}

// FullSelection returns a selection with every one of the n rows set.
func FullSelection(n int) *Selection {
	s := newSelection(n)
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.maskTail()
	s.count = n
	return s
}

// EmptySelection returns a selection over n rows with no row set.
func EmptySelection(n int) *Selection { return newSelection(n) }

// maskTail clears the bits past the last row in the final word, preserving
// the invariant that unused bits are always zero (Not and Count rely on it).
func (s *Selection) maskTail() {
	if tail := s.n % 64; tail != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (uint64(1) << tail) - 1
	}
}

// recount recomputes the cached population count after kernel writes.
func (s *Selection) recount() {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	s.count = c
}

// setBit marks row i as selected. Kernels call it during construction; the
// selection must not have been shared yet.
func (s *Selection) setBit(i int) { s.words[i/64] |= uint64(1) << (i % 64) }

// Len returns the number of rows the selection spans (set or not).
func (s *Selection) Len() int { return s.n }

// Count returns the number of selected rows.
func (s *Selection) Count() int { return s.count }

// Contains reports whether row i is selected.
func (s *Selection) Contains(i int) bool {
	return s.words[i/64]&(uint64(1)<<(i%64)) != 0
}

// checkSameSpan panics when two selections span different row counts:
// combining selections of different tables is a programming error that would
// otherwise corrupt the bitmap (or index out of range) far from its cause.
func (s *Selection) checkSameSpan(o *Selection) {
	if s.n != o.n {
		panic(fmt.Sprintf("dataset: combining selections over %d and %d rows", s.n, o.n))
	}
}

// And returns the intersection of two selections, which must span the same
// table. It runs on the pool the receiver was compiled on (so a table pinned
// with SetPool keeps its whole selection lineage pinned).
func (s *Selection) And(o *Selection) *Selection { return s.andWith(o, s.execPool()) }

// Or returns the union of two selections, which must span the same table; it
// runs on the receiver's pool, like And.
func (s *Selection) Or(o *Selection) *Selection { return s.orWith(o, s.execPool()) }

// Not returns the complement of the selection, on the receiver's pool.
func (s *Selection) Not() *Selection { return s.notWith(s.execPool()) }

// andWith is And on an explicit pool: the word array is split into
// morsel-sized ranges, each intersected and popcounted independently, and the
// per-range counts summed in range order. Table.Where routes combinators here
// with the table's pool; the public And uses the default pool.
func (s *Selection) andWith(o *Selection, p *Pool) *Selection {
	s.checkSameSpan(o)
	out := s.sibling()
	out.pool = p
	out.count = runCounted(p, len(out.words), morselWords, func(lo, hi int) int {
		a, b, dst := s.words[lo:hi], o.words[lo:hi], out.words[lo:hi]
		c := 0
		for j := range dst {
			w := a[j] & b[j]
			dst[j] = w
			c += bits.OnesCount64(w)
		}
		return c
	})
	return out
}

// orWith is Or on an explicit pool; see andWith.
func (s *Selection) orWith(o *Selection, p *Pool) *Selection {
	s.checkSameSpan(o)
	out := s.sibling()
	out.pool = p
	out.count = runCounted(p, len(out.words), morselWords, func(lo, hi int) int {
		a, b, dst := s.words[lo:hi], o.words[lo:hi], out.words[lo:hi]
		c := 0
		for j := range dst {
			w := a[j] | b[j]
			dst[j] = w
			c += bits.OnesCount64(w)
		}
		return c
	})
	return out
}

// notWith is Not on an explicit pool. The complement's count is known without
// a popcount (n - count, thanks to the zero-tail invariant), so the ranges
// only flip words; the tail mask is reapplied once at the end.
func (s *Selection) notWith(p *Pool) *Selection {
	out := s.sibling()
	out.pool = p
	runCounted(p, len(out.words), morselWords, func(lo, hi int) int {
		src, dst := s.words[lo:hi], out.words[lo:hi]
		for j := range dst {
			dst[j] = ^src[j]
		}
		return 0
	})
	out.maskTail()
	out.count = s.n - s.count
	return out
}

// ForEach calls fn with every selected row index, in ascending order.
func (s *Selection) ForEach(fn func(row int)) { s.forEachIn(0, s.n, fn) }

// forEachIn calls fn with every selected row index in [lo, hi), ascending.
// lo must be word-aligned; hi is either word-aligned or s.n (the zero-tail
// invariant makes masking the final word unnecessary). The parallel
// aggregations give each morsel its own [lo, hi) range.
func (s *Selection) forEachIn(lo, hi int, fn func(row int)) {
	for wi := lo / 64; wi < (hi+63)/64; wi++ {
		w := s.words[wi]
		base := wi * 64
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// countIn returns the number of selected rows in the word-aligned range
// [lo, hi) (hi word-aligned or s.n).
func (s *Selection) countIn(lo, hi int) int {
	c := 0
	for wi := lo / 64; wi < (hi+63)/64; wi++ {
		c += bits.OnesCount64(s.words[wi])
	}
	return c
}

// Indices returns the selected row indices in ascending order.
func (s *Selection) Indices() []int {
	out := make([]int, 0, s.count)
	s.ForEach(func(row int) { out = append(out, row) })
	return out
}

// --- predicate kernels ---

// Where compiles the predicate into a Selection over the table's rows. A nil
// predicate selects every row. The seven built-in predicate types run as
// columnar kernels (one type-dispatched pass per leaf, bitmap algebra for the
// combinators); any other Predicate implementation falls back to the
// row-at-a-time Matches loop, so external predicates keep working. Leaves run
// the tuned branch-free kernels (kernels.go); WhereGeneric keeps the original
// kernels reachable as a differential oracle. When the table has an arena
// (SetArena), the result draws its words from it — the caller may Release it
// if (and only if) it owns the selection exclusively.
func (t *Table) Where(p Predicate) (*Selection, error) { return t.where(p, true) }

// WhereGeneric is Where on the untuned predicate kernels — the PR-5 bodies
// with a per-row branch and a read-modify-write per matching bit. It exists
// as the comparison baseline for the tuned kernels: benchmarks pin slices to
// it, and the differential tests assert Where and WhereGeneric produce
// word-identical bitmaps.
func (t *Table) WhereGeneric(p Predicate) (*Selection, error) { return t.where(p, false) }

// where is the shared compile body behind Where (tuned=true) and WhereGeneric
// (tuned=false): one combinator/short-circuit/error structure, two leaf kernel
// generations. Combinator intermediates are exclusively owned here and are
// released back to the table's arena as soon as they are consumed.
func (t *Table) where(p Predicate, tuned bool) (*Selection, error) {
	if p == nil {
		return t.fullSel(), nil
	}
	switch q := p.(type) {
	case Equals:
		if tuned {
			return t.whereEqualsTuned(q)
		}
		return t.whereEquals(q)
	case In:
		if tuned {
			return t.whereInTuned(q)
		}
		return t.whereIn(q)
	case Range:
		if tuned {
			return t.whereRangeTuned(q)
		}
		return t.whereNumeric(q.Column, func(v float64) bool { return v >= q.Low && v < q.High })
	case GreaterThan:
		if tuned {
			return t.whereGreaterTuned(q)
		}
		return t.whereNumeric(q.Column, func(v float64) bool { return v > q.Threshold })
	case Not:
		if q.Inner == nil {
			return nil, fmt.Errorf("dataset: not predicate with nil inner predicate")
		}
		inner, err := t.where(q.Inner, tuned)
		if err != nil {
			return nil, err
		}
		out := inner.notWith(t.execPool())
		inner.Release()
		return out, nil
	case And:
		sel := t.fullSel()
		for _, term := range q.Terms {
			// Short-circuit on an empty accumulator: no row would reach the
			// remaining terms row-at-a-time, so they must not be compiled —
			// this keeps error behavior identical to the reference path (a
			// term with a bad column after an all-false term never errors).
			if sel.Count() == 0 {
				break
			}
			ts, err := t.where(term, tuned)
			if err != nil {
				sel.Release()
				return nil, err
			}
			next := sel.andWith(ts, t.execPool())
			sel.Release()
			ts.Release()
			sel = next
		}
		return sel, nil
	case Or:
		sel := t.newSel()
		for _, term := range q.Terms {
			// Mirror image of the And short-circuit: once every row is
			// selected, no row would evaluate the remaining terms.
			if sel.Count() == t.rows {
				break
			}
			ts, err := t.where(term, tuned)
			if err != nil {
				sel.Release()
				return nil, err
			}
			next := sel.orWith(ts, t.execPool())
			sel.Release()
			ts.Release()
			sel = next
		}
		return sel, nil
	default:
		sel := t.newSel()
		for i := 0; i < t.rows; i++ {
			ok, err := p.Matches(t, i)
			if err != nil {
				return nil, err
			}
			if ok {
				sel.setBit(i)
			}
		}
		sel.recount()
		return sel, nil
	}
}

// stamp marks a freshly built selection with the table's execution pool, so
// later algebra on it (And/Or/Not) stays on the pool the table is pinned to.
func (t *Table) stamp(sel *Selection) *Selection {
	sel.pool = t.execPool()
	return sel
}

// categoricalColumn resolves a column that Equals/In may scan, with the same
// errors the row-at-a-time path produces.
func (t *Table) categoricalColumn(name string) (*Column, error) {
	c, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	if c.Type != Categorical && c.Type != Bool {
		return nil, fmt.Errorf("%w: %s is %s, not categorical", ErrTypeMismatch, c.Name, c.Type)
	}
	return c, nil
}

func (t *Table) whereEquals(q Equals) (*Selection, error) {
	c, err := t.categoricalColumn(q.Column)
	if err != nil {
		return nil, err
	}
	if c.Type == Bool {
		switch q.Value {
		case "true":
			return t.whereBools(c, true), nil
		case "false":
			return t.whereBools(c, false), nil
		default:
			return t.stamp(EmptySelection(t.rows)), nil
		}
	}
	code, ok := c.codeOf[q.Value]
	if !ok {
		return t.stamp(EmptySelection(t.rows)), nil
	}
	return t.fillSelection(func(sel *Selection, lo, hi int) int {
		n := 0
		for j, rc := range c.codes[lo:hi] {
			if rc == code {
				sel.setBit(lo + j)
				n++
			}
		}
		return n
	}), nil
}

func (t *Table) whereIn(q In) (*Selection, error) {
	c, err := t.categoricalColumn(q.Column)
	if err != nil {
		return nil, err
	}
	if c.Type == Bool {
		var wantTrue, wantFalse bool
		for _, v := range q.Values {
			switch v {
			case "true":
				wantTrue = true
			case "false":
				wantFalse = true
			}
		}
		switch {
		case wantTrue && wantFalse:
			return t.stamp(FullSelection(t.rows)), nil
		case wantTrue:
			return t.whereBools(c, true), nil
		case wantFalse:
			return t.whereBools(c, false), nil
		default:
			return t.stamp(EmptySelection(t.rows)), nil
		}
	}
	// Translate the value set into a code set once, then scan codes.
	want := make(map[uint32]struct{}, len(q.Values))
	for _, v := range q.Values {
		if code, ok := c.codeOf[v]; ok {
			want[code] = struct{}{}
		}
	}
	if len(want) == 0 {
		return t.stamp(EmptySelection(t.rows)), nil
	}
	return t.fillSelection(func(sel *Selection, lo, hi int) int {
		n := 0
		for j, rc := range c.codes[lo:hi] {
			if _, ok := want[rc]; ok {
				sel.setBit(lo + j)
				n++
			}
		}
		return n
	}), nil
}

func (t *Table) whereBools(c *Column, want bool) *Selection {
	return t.fillSelection(func(sel *Selection, lo, hi int) int {
		n := 0
		for j, b := range c.bools[lo:hi] {
			if b == want {
				sel.setBit(lo + j)
				n++
			}
		}
		return n
	})
}

func (t *Table) whereNumeric(name string, keep func(float64) bool) (*Selection, error) {
	c, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	switch c.Type {
	case Float64:
		return t.fillSelection(func(sel *Selection, lo, hi int) int {
			n := 0
			for j, v := range c.floats[lo:hi] {
				if keep(v) {
					sel.setBit(lo + j)
					n++
				}
			}
			return n
		}), nil
	case Int64:
		return t.fillSelection(func(sel *Selection, lo, hi int) int {
			n := 0
			for j, v := range c.ints[lo:hi] {
				if keep(float64(v)) {
					sel.setBit(lo + j)
					n++
				}
			}
			return n
		}), nil
	default:
		return nil, fmt.Errorf("%w: %s is %s, not numeric", ErrTypeMismatch, c.Name, c.Type)
	}
}

// --- views ---

// View is a zero-copy filtered look at an immutable table: the table plus a
// Selection of its rows. Every read that the evaluation layer needs — counts
// per category, equal-width bin counts, numeric extraction, group-bys —
// iterates the selection's set bits over the shared column storage, so no
// sub-table is ever materialized. Views are values; copying one is free.
type View struct {
	table *Table
	sel   *Selection
}

// View compiles the predicate (nil = all rows) and wraps the result.
func (t *Table) View(p Predicate) (View, error) {
	sel, err := t.Where(p)
	if err != nil {
		return View{}, err
	}
	return View{table: t, sel: sel}, nil
}

// NewView pairs a table with an existing selection, which must span exactly
// the table's rows.
func NewView(t *Table, sel *Selection) (View, error) {
	if t == nil || sel == nil {
		return View{}, fmt.Errorf("dataset: view requires a table and a selection")
	}
	if sel.Len() != t.rows {
		return View{}, fmt.Errorf("%w: selection spans %d rows, table has %d", ErrLengthMismatch, sel.Len(), t.rows)
	}
	return View{table: t, sel: sel}, nil
}

// Table returns the underlying (shared, immutable) table.
func (v View) Table() *Table { return v.table }

// Selection returns the view's row selection.
func (v View) Selection() *Selection { return v.sel }

// NumRows returns the number of selected rows.
func (v View) NumRows() int { return v.sel.Count() }

// CountsFor returns the counts of the column's values among the selected
// rows, in the order given by categories — the vectorized equivalent of
// materializing the sub-table and calling Table.CountsFor.
func (v View) CountsFor(name string, categories []string) ([]int, error) {
	c, err := v.table.categoricalColumn(name)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(categories))
	if c.Type == Bool {
		tally := v.boolTally(c)
		for i, cat := range categories {
			switch cat {
			case "true":
				out[i] = tally[1]
			case "false":
				out[i] = tally[0]
			}
		}
		return out, nil
	}
	byCode := v.codeCounts(c)
	for i, cat := range categories {
		if code, ok := c.codeOf[cat]; ok {
			out[i] = byCode[code]
		}
	}
	return out, nil
}

// codeCounts tallies the selected rows of a categorical column per dictionary
// code — per-morsel partial histograms merged in morsel order.
func (v View) codeCounts(c *Column) []int {
	return reduceInts(v.table.execPool(), v.sel.n, len(c.dict), func(lo, hi int, acc []int) {
		v.sel.forEachIn(lo, hi, func(row int) { acc[c.codes[row]]++ })
	})
}

// boolTally counts the selected false (index 0) and true (index 1) rows of a
// bool column.
func (v View) boolTally(c *Column) []int {
	return reduceInts(v.table.execPool(), v.sel.n, 2, func(lo, hi int, acc []int) {
		v.sel.forEachIn(lo, hi, func(row int) {
			if c.bools[row] {
				acc[1]++
			} else {
				acc[0]++
			}
		})
	})
}

// GroupBy returns the per-value counts of a categorical (or bool) column
// among the selected rows, sorted by value — the bars a filtered chart
// renders, without materializing the sub-table.
func (v View) GroupBy(name string) ([]GroupCount, error) {
	c, err := v.table.categoricalColumn(name)
	if err != nil {
		return nil, err
	}
	var out []GroupCount
	if c.Type == Bool {
		tally := v.boolTally(c)
		if tally[0] > 0 {
			out = append(out, GroupCount{Value: "false", Count: tally[0]})
		}
		if tally[1] > 0 {
			out = append(out, GroupCount{Value: "true", Count: tally[1]})
		}
		return out, nil
	}
	byCode := v.codeCounts(c)
	for code, n := range byCode {
		if n > 0 {
			out = append(out, GroupCount{Value: c.dict[code], Count: n})
		}
	}
	// The dictionary is sorted, so the output already is.
	return out, nil
}

// Floats returns the numeric values of the named column at the selected rows,
// in row order. Above the morsel cutoff the gather is parallel: a popcount
// pass fixes each morsel's output offset (an exclusive prefix sum in morsel
// order), then every morsel writes its disjoint sub-slice — so the output is
// byte-identical to the sequential append loop.
func (v View) Floats(name string) ([]float64, error) {
	c, err := v.table.Column(name)
	if err != nil {
		return nil, err
	}
	var at func(row int) float64
	switch c.Type {
	case Float64:
		at = func(row int) float64 { return c.floats[row] }
	case Int64:
		at = func(row int) float64 { return float64(c.ints[row]) }
	default:
		return nil, fmt.Errorf("%w: %s is %s, not numeric", ErrTypeMismatch, c.Name, c.Type)
	}
	sel, p := v.sel, v.table.execPool()
	out := make([]float64, sel.count)
	m := chunks(sel.n, morselRows)
	if m <= 1 || p.workers == 1 {
		p.cutoffHits.Add(1)
		i := 0
		sel.forEachIn(0, sel.n, func(row int) { out[i] = at(row); i++ })
		return out, nil
	}
	offsets := make([]int, m)
	p.Run(m, func(i int) {
		lo := i * morselRows
		offsets[i] = sel.countIn(lo, min(lo+morselRows, sel.n))
	})
	sum := 0
	for i, c := range offsets {
		offsets[i] = sum
		sum += c
	}
	p.Run(m, func(i int) {
		lo := i * morselRows
		j := offsets[i]
		sel.forEachIn(lo, min(lo+morselRows, sel.n), func(row int) { out[j] = at(row); j++ })
	})
	return out, nil
}

// BinCounts returns the per-bin counts of a numeric column among the selected
// rows, using equal-width bins whose edges span the FULL table's range — the
// axes a filtered histogram shares with the population it is compared
// against. The per-row bin assignment is computed once per (table, column,
// bins) and memoized on the table, so every subsequent view pays only one
// array lookup per selected row.
func (v View) BinCounts(name string, bins int) ([]int, error) {
	ba, err := v.table.binAssignments(name, bins)
	if err != nil {
		return nil, err
	}
	counts := reduceInts(v.table.execPool(), v.sel.n, bins, func(lo, hi int, acc []int) {
		v.sel.forEachIn(lo, hi, func(row int) { acc[ba.assign[row]]++ })
	})
	return counts, nil
}

// Materialize copies the selected rows into a standalone table. The
// vectorized paths never need this; it exists for callers that must hand a
// *Table to legacy APIs.
func (v View) Materialize() (*Table, error) {
	return v.table.Select(v.sel.Indices())
}

// binAssignments computes (or returns the memoized) per-row bin index of a
// numeric column cut into equal-width bins spanning the full table's range.
// The arithmetic replicates the reference path — stats.NewHistogram edges,
// then int((v-lo)/width) with clamping, with a degenerate-width fallback that
// assigns every row to bin 0 — so vectorized bin counts are bit-for-bit
// identical to binning a materialized sub-table.
func (t *Table) binAssignments(column string, binCount int) (*binAssignment, error) {
	key := binKey{column: column, bins: binCount}
	t.binsMu.RLock()
	ba := t.bins[key]
	t.binsMu.RUnlock()
	if ba != nil {
		return ba, nil
	}
	all, err := t.Floats(column)
	if err != nil {
		return nil, err
	}
	hist, err := stats.NewHistogram(all, binCount)
	if err != nil {
		return nil, err
	}
	lo := hist.Edges[0]
	hi := hist.Edges[len(hist.Edges)-1]
	width := (hi - lo) / float64(binCount)
	assign := make([]int32, len(all))
	if width > 0 {
		for i, v := range all {
			idx := int((v - lo) / width)
			if idx < 0 {
				idx = 0
			}
			if idx >= binCount {
				idx = binCount - 1
			}
			assign[i] = int32(idx)
		}
	}
	ba = &binAssignment{assign: assign, bins: binCount}
	t.binsMu.Lock()
	if t.bins == nil {
		t.bins = make(map[binKey]*binAssignment)
	}
	if prev, ok := t.bins[key]; ok {
		ba = prev // a concurrent caller computed it first; keep one copy
	} else {
		t.bins[key] = ba
	}
	t.binsMu.Unlock()
	return ba, nil
}

// --- the filter-bitmap cache ---

// defaultSelectionCacheCap bounds a SelectionCache; see NewSelectionCache.
const defaultSelectionCacheCap = 4096

// SelectionCache memoizes compiled filter bitmaps for one immutable table,
// keyed by the canonical predicate serialization (CanonicalPredicateKey), so
// semantically equal filters — including In predicates written with their
// values in different orders and And/Or trees with reordered terms — share one
// Selection. Selections are immutable, so a cache may be shared by any number
// of concurrent sessions exploring the same dataset; all methods are safe for
// concurrent use.
//
// The cache is additionally subsumption-aware: a conjunction P∧Q whose exact
// key misses is probed for the longest cached prefix of its canonical
// conjunct order, and a cached bitmap for P then serves as the scan base —
// only the residual conjuncts compile, and one bitmap And replaces the full
// scan. These partial hits are counted separately from exact hits.
//
// The cache is capacity-bounded: past cap entries, an arbitrary entry is
// evicted per insert. Eviction never affects correctness, only hit rate.
type SelectionCache struct {
	table *Table
	cap   int
	full  *Selection // the nil-predicate selection, shared by every caller

	mu      sync.RWMutex
	entries map[string]*Selection

	hits        atomic.Uint64
	partialHits atomic.Uint64
	misses      atomic.Uint64
}

// NewSelectionCache builds a cache over the table with the default capacity.
func NewSelectionCache(t *Table) *SelectionCache {
	return NewSelectionCacheCap(t, defaultSelectionCacheCap)
}

// NewSelectionCacheCap builds a cache with an explicit capacity (entries).
func NewSelectionCacheCap(t *Table, capacity int) *SelectionCache {
	if capacity <= 0 {
		capacity = defaultSelectionCacheCap
	}
	return &SelectionCache{
		table:   t,
		cap:     capacity,
		full:    t.stamp(FullSelection(t.NumRows())),
		entries: make(map[string]*Selection),
	}
}

// Table returns the table the cache compiles against.
func (c *SelectionCache) Table() *Table { return c.table }

// Where returns the selection for the predicate, compiling and caching it on
// first use. A nil predicate returns the shared full selection (built once —
// it is on the hot path of every population-vs-filter test); predicates that
// cannot be canonically serialized are compiled uncached.
func (c *SelectionCache) Where(p Predicate) (*Selection, error) {
	sel, _, err := c.whereCached(p)
	return sel, err
}

// whereCached is Where plus the cache outcome — "full" (shared nil-predicate
// selection), "hit" (exact key), "partial" (served from a cached prefix of
// the conjunction), "miss" or "uncacheable" — which the traced variant
// (WhereSpan) records on its kernel span.
func (c *SelectionCache) whereCached(p Predicate) (*Selection, string, error) {
	if p == nil {
		return c.full, "full", nil
	}
	key, err := CanonicalPredicateKey(p)
	if err != nil {
		sel, werr := c.table.Where(p)
		return sel, "uncacheable", werr
	}
	if sel := c.lookup(key); sel != nil {
		c.hits.Add(1)
		return sel, "hit", nil
	}
	if and, ok := p.(And); ok && len(and.Terms) >= 2 {
		if sel, ok := c.whereSubsumed(and, key); ok {
			c.partialHits.Add(1)
			return sel, "partial", nil
		}
	}
	c.misses.Add(1)
	sel, err := c.table.Where(p)
	if err != nil {
		return nil, "miss", err
	}
	return c.store(key, sel), "miss", nil
}

// lookup returns the cached selection under key, or nil.
func (c *SelectionCache) lookup(key string) *Selection {
	c.mu.RLock()
	sel := c.entries[key]
	c.mu.RUnlock()
	return sel
}

// store detaches sel from the table's arena and inserts it under key,
// returning the canonical copy (the already-present one when a concurrent
// caller won the benign insert race).
func (c *SelectionCache) store(key string, sel *Selection) *Selection {
	// A cached selection is shared with every future caller for the cache's
	// lifetime, so it must never return to the table's arena.
	sel.detach()
	c.mu.Lock()
	if prev, ok := c.entries[key]; ok {
		sel = prev // lost a benign race; keep the first copy
	} else {
		if len(c.entries) >= c.cap {
			for k := range c.entries {
				delete(c.entries, k)
				break
			}
		}
		c.entries[key] = sel
	}
	c.mu.Unlock()
	return sel
}

// whereSubsumed tries to serve the conjunction from a cached prefix: the
// terms are put into canonical key order, the cache is probed for the longest
// prefix conjunction already compiled, and only the residual terms compile —
// each And-ed into the cached base bitmap. The result is stored under the
// full key, so the next identical query is an exact hit. It reports false —
// and the caller falls through to a cold compile — when the terms have no
// canonical keys, no prefix is cached, or a residual term fails to compile
// (the cold path owns error semantics, including the reference path's
// short-circuit behavior on empty accumulators).
func (c *SelectionCache) whereSubsumed(q And, fullKey string) (*Selection, bool) {
	keys := make([]string, len(q.Terms))
	terms := make([]Predicate, len(q.Terms))
	copy(terms, q.Terms)
	for i, t := range q.Terms {
		k, err := CanonicalPredicateKey(t)
		if err != nil {
			return nil, false
		}
		keys[i] = k
	}
	sort.Sort(&predsByKey{keys: keys, terms: terms})
	for n := len(terms) - 1; n >= 1; n-- {
		base := c.lookup(andKeyOf(keys[:n]))
		if base == nil {
			continue
		}
		sel, owned := base, false
		for _, term := range terms[n:] {
			// An empty accumulator already decides the conjunction; stop
			// compiling residuals (mirrors the And short-circuit in where).
			if sel.Count() == 0 {
				break
			}
			ts, err := c.table.Where(term)
			if err != nil {
				if owned {
					sel.Release()
				}
				return nil, false
			}
			next := sel.andWith(ts, c.table.execPool())
			if owned {
				sel.Release()
			}
			ts.Release()
			sel, owned = next, true
		}
		// When the cached base was empty before any residual ran, sel is still
		// the base bitmap itself — already detached, and aliasing it under the
		// full key too is exactly right (the conjunction IS empty).
		return c.store(fullKey, sel), true
	}
	return nil, false
}

// andKeyOf rebuilds the canonical key of the conjunction of terms whose
// canonical keys are given in ascending order: the bare term key for one
// term, the and wire object over the keys otherwise (exactly what
// CanonicalPredicateKey produces for that conjunction).
func andKeyOf(keys []string) string {
	if len(keys) == 1 {
		return keys[0]
	}
	total := len(`{"type":"and","terms":[]}`) + len(keys) - 1
	for _, k := range keys {
		total += len(k)
	}
	var b strings.Builder
	b.Grow(total)
	b.WriteString(`{"type":"and","terms":[`)
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
	}
	b.WriteString(`]}`)
	return b.String()
}

// predsByKey sorts a predicate slice and its canonical keys in lockstep.
type predsByKey struct {
	keys  []string
	terms []Predicate
}

func (s *predsByKey) Len() int           { return len(s.keys) }
func (s *predsByKey) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *predsByKey) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.terms[i], s.terms[j] = s.terms[j], s.terms[i]
}

// View is Where wrapped into a zero-copy view.
func (c *SelectionCache) View(p Predicate) (View, error) {
	sel, err := c.Where(p)
	if err != nil {
		return View{}, err
	}
	return View{table: c.table, sel: sel}, nil
}

// Len returns the number of cached bitmaps.
func (c *SelectionCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Stats returns the cumulative exact-hit, partial-hit (subsumption-served)
// and miss counters.
func (c *SelectionCache) Stats() (hits, partialHits, misses uint64) {
	return c.hits.Load(), c.partialHits.Load(), c.misses.Load()
}

// sortedStrings returns a sorted copy of values (the canonical order used by
// In.Describe, the JSON codec and the cache key).
func sortedStrings(values []string) []string {
	out := append([]string(nil), values...)
	sort.Strings(out)
	return out
}
