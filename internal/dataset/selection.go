package dataset

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"aware/internal/stats"
)

// This file is the vectorized execution path of the substrate. Instead of
// interpreting a Predicate row by row (Predicate.Matches, kept as the
// reference implementation for differential testing), each predicate compiles
// into a columnar kernel producing a Selection — a dense bitmap over the
// table's row indices. Boolean combinators become word-wise bitmap operations
// (And = intersect, Or = union, Not = flip), and a View pairs the immutable
// table with a Selection so that counting, histogramming and numeric
// extraction iterate set bits without ever materializing a sub-table.

// Selection is an immutable dense bitmap over the rows of a table: bit i is
// set when row i is selected. Selections are created by the predicate kernels
// (Table.Where) and combined with And/Or/Not, each of which returns a new
// Selection; once returned, a Selection is never mutated, so it may be shared
// freely across goroutines and cached across sessions.
type Selection struct {
	n     int
	words []uint64
	count int
}

// newSelection returns an all-clear selection over n rows.
func newSelection(n int) *Selection {
	return &Selection{n: n, words: make([]uint64, (n+63)/64)}
}

// FullSelection returns a selection with every one of the n rows set.
func FullSelection(n int) *Selection {
	s := newSelection(n)
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.maskTail()
	s.count = n
	return s
}

// EmptySelection returns a selection over n rows with no row set.
func EmptySelection(n int) *Selection { return newSelection(n) }

// maskTail clears the bits past the last row in the final word, preserving
// the invariant that unused bits are always zero (Not and Count rely on it).
func (s *Selection) maskTail() {
	if tail := s.n % 64; tail != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (uint64(1) << tail) - 1
	}
}

// recount recomputes the cached population count after kernel writes.
func (s *Selection) recount() {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	s.count = c
}

// setBit marks row i as selected. Kernels call it during construction; the
// selection must not have been shared yet.
func (s *Selection) setBit(i int) { s.words[i/64] |= uint64(1) << (i % 64) }

// Len returns the number of rows the selection spans (set or not).
func (s *Selection) Len() int { return s.n }

// Count returns the number of selected rows.
func (s *Selection) Count() int { return s.count }

// Contains reports whether row i is selected.
func (s *Selection) Contains(i int) bool {
	return s.words[i/64]&(uint64(1)<<(i%64)) != 0
}

// checkSameSpan panics when two selections span different row counts:
// combining selections of different tables is a programming error that would
// otherwise corrupt the bitmap (or index out of range) far from its cause.
func (s *Selection) checkSameSpan(o *Selection) {
	if s.n != o.n {
		panic(fmt.Sprintf("dataset: combining selections over %d and %d rows", s.n, o.n))
	}
}

// And returns the intersection of two selections, which must span the same
// table.
func (s *Selection) And(o *Selection) *Selection {
	s.checkSameSpan(o)
	out := newSelection(s.n)
	for i := range out.words {
		out.words[i] = s.words[i] & o.words[i]
	}
	out.recount()
	return out
}

// Or returns the union of two selections, which must span the same table.
func (s *Selection) Or(o *Selection) *Selection {
	s.checkSameSpan(o)
	out := newSelection(s.n)
	for i := range out.words {
		out.words[i] = s.words[i] | o.words[i]
	}
	out.recount()
	return out
}

// Not returns the complement of the selection.
func (s *Selection) Not() *Selection {
	out := newSelection(s.n)
	for i := range out.words {
		out.words[i] = ^s.words[i]
	}
	out.maskTail()
	out.count = s.n - s.count
	return out
}

// ForEach calls fn with every selected row index, in ascending order.
func (s *Selection) ForEach(fn func(row int)) {
	for wi, w := range s.words {
		base := wi * 64
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Indices returns the selected row indices in ascending order.
func (s *Selection) Indices() []int {
	out := make([]int, 0, s.count)
	s.ForEach(func(row int) { out = append(out, row) })
	return out
}

// --- predicate kernels ---

// Where compiles the predicate into a Selection over the table's rows. A nil
// predicate selects every row. The seven built-in predicate types run as
// columnar kernels (one type-dispatched pass per leaf, bitmap algebra for the
// combinators); any other Predicate implementation falls back to the
// row-at-a-time Matches loop, so external predicates keep working.
func (t *Table) Where(p Predicate) (*Selection, error) {
	if p == nil {
		return FullSelection(t.rows), nil
	}
	switch q := p.(type) {
	case Equals:
		return t.whereEquals(q)
	case In:
		return t.whereIn(q)
	case Range:
		return t.whereNumeric(q.Column, func(v float64) bool { return v >= q.Low && v < q.High })
	case GreaterThan:
		return t.whereNumeric(q.Column, func(v float64) bool { return v > q.Threshold })
	case Not:
		if q.Inner == nil {
			return nil, fmt.Errorf("dataset: not predicate with nil inner predicate")
		}
		inner, err := t.Where(q.Inner)
		if err != nil {
			return nil, err
		}
		return inner.Not(), nil
	case And:
		sel := FullSelection(t.rows)
		for _, term := range q.Terms {
			// Short-circuit on an empty accumulator: no row would reach the
			// remaining terms row-at-a-time, so they must not be compiled —
			// this keeps error behavior identical to the reference path (a
			// term with a bad column after an all-false term never errors).
			if sel.Count() == 0 {
				break
			}
			ts, err := t.Where(term)
			if err != nil {
				return nil, err
			}
			sel = sel.And(ts)
		}
		return sel, nil
	case Or:
		sel := EmptySelection(t.rows)
		for _, term := range q.Terms {
			// Mirror image of the And short-circuit: once every row is
			// selected, no row would evaluate the remaining terms.
			if sel.Count() == t.rows {
				break
			}
			ts, err := t.Where(term)
			if err != nil {
				return nil, err
			}
			sel = sel.Or(ts)
		}
		return sel, nil
	default:
		sel := newSelection(t.rows)
		for i := 0; i < t.rows; i++ {
			ok, err := p.Matches(t, i)
			if err != nil {
				return nil, err
			}
			if ok {
				sel.setBit(i)
			}
		}
		sel.recount()
		return sel, nil
	}
}

// categoricalColumn resolves a column that Equals/In may scan, with the same
// errors the row-at-a-time path produces.
func (t *Table) categoricalColumn(name string) (*Column, error) {
	c, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	if c.Type != Categorical && c.Type != Bool {
		return nil, fmt.Errorf("%w: %s is %s, not categorical", ErrTypeMismatch, c.Name, c.Type)
	}
	return c, nil
}

func (t *Table) whereEquals(q Equals) (*Selection, error) {
	c, err := t.categoricalColumn(q.Column)
	if err != nil {
		return nil, err
	}
	if c.Type == Bool {
		switch q.Value {
		case "true":
			return t.whereBools(c, true), nil
		case "false":
			return t.whereBools(c, false), nil
		default:
			return EmptySelection(t.rows), nil
		}
	}
	code, ok := c.codeOf[q.Value]
	if !ok {
		return EmptySelection(t.rows), nil
	}
	sel := newSelection(t.rows)
	for i, rc := range c.codes {
		if rc == code {
			sel.setBit(i)
		}
	}
	sel.recount()
	return sel, nil
}

func (t *Table) whereIn(q In) (*Selection, error) {
	c, err := t.categoricalColumn(q.Column)
	if err != nil {
		return nil, err
	}
	if c.Type == Bool {
		var wantTrue, wantFalse bool
		for _, v := range q.Values {
			switch v {
			case "true":
				wantTrue = true
			case "false":
				wantFalse = true
			}
		}
		switch {
		case wantTrue && wantFalse:
			return FullSelection(t.rows), nil
		case wantTrue:
			return t.whereBools(c, true), nil
		case wantFalse:
			return t.whereBools(c, false), nil
		default:
			return EmptySelection(t.rows), nil
		}
	}
	// Translate the value set into a code set once, then scan codes.
	want := make(map[uint32]struct{}, len(q.Values))
	for _, v := range q.Values {
		if code, ok := c.codeOf[v]; ok {
			want[code] = struct{}{}
		}
	}
	if len(want) == 0 {
		return EmptySelection(t.rows), nil
	}
	sel := newSelection(t.rows)
	for i, rc := range c.codes {
		if _, ok := want[rc]; ok {
			sel.setBit(i)
		}
	}
	sel.recount()
	return sel, nil
}

func (t *Table) whereBools(c *Column, want bool) *Selection {
	sel := newSelection(t.rows)
	for i, b := range c.bools {
		if b == want {
			sel.setBit(i)
		}
	}
	sel.recount()
	return sel
}

func (t *Table) whereNumeric(name string, keep func(float64) bool) (*Selection, error) {
	c, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	sel := newSelection(t.rows)
	switch c.Type {
	case Float64:
		for i, v := range c.floats {
			if keep(v) {
				sel.setBit(i)
			}
		}
	case Int64:
		for i, v := range c.ints {
			if keep(float64(v)) {
				sel.setBit(i)
			}
		}
	default:
		return nil, fmt.Errorf("%w: %s is %s, not numeric", ErrTypeMismatch, c.Name, c.Type)
	}
	sel.recount()
	return sel, nil
}

// --- views ---

// View is a zero-copy filtered look at an immutable table: the table plus a
// Selection of its rows. Every read that the evaluation layer needs — counts
// per category, equal-width bin counts, numeric extraction, group-bys —
// iterates the selection's set bits over the shared column storage, so no
// sub-table is ever materialized. Views are values; copying one is free.
type View struct {
	table *Table
	sel   *Selection
}

// View compiles the predicate (nil = all rows) and wraps the result.
func (t *Table) View(p Predicate) (View, error) {
	sel, err := t.Where(p)
	if err != nil {
		return View{}, err
	}
	return View{table: t, sel: sel}, nil
}

// NewView pairs a table with an existing selection, which must span exactly
// the table's rows.
func NewView(t *Table, sel *Selection) (View, error) {
	if t == nil || sel == nil {
		return View{}, fmt.Errorf("dataset: view requires a table and a selection")
	}
	if sel.Len() != t.rows {
		return View{}, fmt.Errorf("%w: selection spans %d rows, table has %d", ErrLengthMismatch, sel.Len(), t.rows)
	}
	return View{table: t, sel: sel}, nil
}

// Table returns the underlying (shared, immutable) table.
func (v View) Table() *Table { return v.table }

// Selection returns the view's row selection.
func (v View) Selection() *Selection { return v.sel }

// NumRows returns the number of selected rows.
func (v View) NumRows() int { return v.sel.Count() }

// CountsFor returns the counts of the column's values among the selected
// rows, in the order given by categories — the vectorized equivalent of
// materializing the sub-table and calling Table.CountsFor.
func (v View) CountsFor(name string, categories []string) ([]int, error) {
	c, err := v.table.categoricalColumn(name)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(categories))
	if c.Type == Bool {
		var nTrue, nFalse int
		v.sel.ForEach(func(row int) {
			if c.bools[row] {
				nTrue++
			} else {
				nFalse++
			}
		})
		for i, cat := range categories {
			switch cat {
			case "true":
				out[i] = nTrue
			case "false":
				out[i] = nFalse
			}
		}
		return out, nil
	}
	byCode := make([]int, len(c.dict))
	v.sel.ForEach(func(row int) { byCode[c.codes[row]]++ })
	for i, cat := range categories {
		if code, ok := c.codeOf[cat]; ok {
			out[i] = byCode[code]
		}
	}
	return out, nil
}

// GroupBy returns the per-value counts of a categorical (or bool) column
// among the selected rows, sorted by value — the bars a filtered chart
// renders, without materializing the sub-table.
func (v View) GroupBy(name string) ([]GroupCount, error) {
	c, err := v.table.categoricalColumn(name)
	if err != nil {
		return nil, err
	}
	var out []GroupCount
	if c.Type == Bool {
		var nTrue, nFalse int
		v.sel.ForEach(func(row int) {
			if c.bools[row] {
				nTrue++
			} else {
				nFalse++
			}
		})
		if nFalse > 0 {
			out = append(out, GroupCount{Value: "false", Count: nFalse})
		}
		if nTrue > 0 {
			out = append(out, GroupCount{Value: "true", Count: nTrue})
		}
		return out, nil
	}
	byCode := make([]int, len(c.dict))
	v.sel.ForEach(func(row int) { byCode[c.codes[row]]++ })
	for code, n := range byCode {
		if n > 0 {
			out = append(out, GroupCount{Value: c.dict[code], Count: n})
		}
	}
	// The dictionary is sorted, so the output already is.
	return out, nil
}

// Floats returns the numeric values of the named column at the selected rows.
func (v View) Floats(name string) ([]float64, error) {
	c, err := v.table.Column(name)
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, v.sel.Count())
	switch c.Type {
	case Float64:
		v.sel.ForEach(func(row int) { out = append(out, c.floats[row]) })
	case Int64:
		v.sel.ForEach(func(row int) { out = append(out, float64(c.ints[row])) })
	default:
		return nil, fmt.Errorf("%w: %s is %s, not numeric", ErrTypeMismatch, c.Name, c.Type)
	}
	return out, nil
}

// BinCounts returns the per-bin counts of a numeric column among the selected
// rows, using equal-width bins whose edges span the FULL table's range — the
// axes a filtered histogram shares with the population it is compared
// against. The per-row bin assignment is computed once per (table, column,
// bins) and memoized on the table, so every subsequent view pays only one
// array lookup per selected row.
func (v View) BinCounts(name string, bins int) ([]int, error) {
	ba, err := v.table.binAssignments(name, bins)
	if err != nil {
		return nil, err
	}
	counts := make([]int, bins)
	v.sel.ForEach(func(row int) { counts[ba.assign[row]]++ })
	return counts, nil
}

// Materialize copies the selected rows into a standalone table. The
// vectorized paths never need this; it exists for callers that must hand a
// *Table to legacy APIs.
func (v View) Materialize() (*Table, error) {
	return v.table.Select(v.sel.Indices())
}

// binAssignments computes (or returns the memoized) per-row bin index of a
// numeric column cut into equal-width bins spanning the full table's range.
// The arithmetic replicates the reference path — stats.NewHistogram edges,
// then int((v-lo)/width) with clamping, with a degenerate-width fallback that
// assigns every row to bin 0 — so vectorized bin counts are bit-for-bit
// identical to binning a materialized sub-table.
func (t *Table) binAssignments(column string, binCount int) (*binAssignment, error) {
	key := binKey{column: column, bins: binCount}
	t.binsMu.RLock()
	ba := t.bins[key]
	t.binsMu.RUnlock()
	if ba != nil {
		return ba, nil
	}
	all, err := t.Floats(column)
	if err != nil {
		return nil, err
	}
	hist, err := stats.NewHistogram(all, binCount)
	if err != nil {
		return nil, err
	}
	lo := hist.Edges[0]
	hi := hist.Edges[len(hist.Edges)-1]
	width := (hi - lo) / float64(binCount)
	assign := make([]int32, len(all))
	if width > 0 {
		for i, v := range all {
			idx := int((v - lo) / width)
			if idx < 0 {
				idx = 0
			}
			if idx >= binCount {
				idx = binCount - 1
			}
			assign[i] = int32(idx)
		}
	}
	ba = &binAssignment{assign: assign, bins: binCount}
	t.binsMu.Lock()
	if t.bins == nil {
		t.bins = make(map[binKey]*binAssignment)
	}
	if prev, ok := t.bins[key]; ok {
		ba = prev // a concurrent caller computed it first; keep one copy
	} else {
		t.bins[key] = ba
	}
	t.binsMu.Unlock()
	return ba, nil
}

// --- the filter-bitmap cache ---

// defaultSelectionCacheCap bounds a SelectionCache; see NewSelectionCache.
const defaultSelectionCacheCap = 4096

// SelectionCache memoizes compiled filter bitmaps for one immutable table,
// keyed by the canonical predicate serialization (CanonicalPredicateKey), so
// semantically equal filters — including In predicates written with their
// values in different orders — share one Selection. Selections are immutable,
// so a cache may be shared by any number of concurrent sessions exploring the
// same dataset; all methods are safe for concurrent use.
//
// The cache is capacity-bounded: past cap entries, an arbitrary entry is
// evicted per insert. Eviction never affects correctness, only hit rate.
type SelectionCache struct {
	table *Table
	cap   int
	full  *Selection // the nil-predicate selection, shared by every caller

	mu      sync.RWMutex
	entries map[string]*Selection

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewSelectionCache builds a cache over the table with the default capacity.
func NewSelectionCache(t *Table) *SelectionCache {
	return NewSelectionCacheCap(t, defaultSelectionCacheCap)
}

// NewSelectionCacheCap builds a cache with an explicit capacity (entries).
func NewSelectionCacheCap(t *Table, capacity int) *SelectionCache {
	if capacity <= 0 {
		capacity = defaultSelectionCacheCap
	}
	return &SelectionCache{
		table:   t,
		cap:     capacity,
		full:    FullSelection(t.NumRows()),
		entries: make(map[string]*Selection),
	}
}

// Table returns the table the cache compiles against.
func (c *SelectionCache) Table() *Table { return c.table }

// Where returns the selection for the predicate, compiling and caching it on
// first use. A nil predicate returns the shared full selection (built once —
// it is on the hot path of every population-vs-filter test); predicates that
// cannot be canonically serialized are compiled uncached.
func (c *SelectionCache) Where(p Predicate) (*Selection, error) {
	if p == nil {
		return c.full, nil
	}
	key, err := CanonicalPredicateKey(p)
	if err != nil {
		return c.table.Where(p)
	}
	c.mu.RLock()
	sel := c.entries[key]
	c.mu.RUnlock()
	if sel != nil {
		c.hits.Add(1)
		return sel, nil
	}
	c.misses.Add(1)
	sel, err = c.table.Where(p)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if prev, ok := c.entries[key]; ok {
		sel = prev // lost a benign race; keep the first copy
	} else {
		if len(c.entries) >= c.cap {
			for k := range c.entries {
				delete(c.entries, k)
				break
			}
		}
		c.entries[key] = sel
	}
	c.mu.Unlock()
	return sel, nil
}

// View is Where wrapped into a zero-copy view.
func (c *SelectionCache) View(p Predicate) (View, error) {
	sel, err := c.Where(p)
	if err != nil {
		return View{}, err
	}
	return View{table: c.table, sel: sel}, nil
}

// Len returns the number of cached bitmaps.
func (c *SelectionCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Stats returns the cumulative hit and miss counters.
func (c *SelectionCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// sortedStrings returns a sorted copy of values (the canonical order used by
// In.Describe, the JSON codec and the cache key).
func sortedStrings(values []string) []string {
	out := append([]string(nil), values...)
	sort.Strings(out)
	return out
}
