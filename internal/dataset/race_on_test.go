//go:build race

package dataset

// raceEnabled reports whether the race detector is compiled in. Under race,
// sync.Pool intentionally drops a fraction of Puts to widen interleaving
// coverage, so tests asserting perfect pool recycling must relax.
const raceEnabled = true
