package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	tab := sampleTable(t)
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	specs := []ColumnSpec{
		{Name: "gender", Type: Categorical},
		{Name: "salary_over_50k", Type: Bool},
		{Name: "age", Type: Float64},
		{Name: "education", Type: Categorical},
		{Name: "income", Type: Int64},
	}
	back, err := ReadCSV(&buf, specs)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tab.NumRows() || back.NumColumns() != tab.NumColumns() {
		t.Fatalf("round trip shape %d x %d", back.NumRows(), back.NumColumns())
	}
	origAges, _ := tab.Floats("age")
	backAges, _ := back.Floats("age")
	for i := range origAges {
		if origAges[i] != backAges[i] {
			t.Fatalf("age[%d] = %v != %v", i, backAges[i], origAges[i])
		}
	}
	origInc, _ := tab.Floats("income")
	backInc, _ := back.Floats("income")
	for i := range origInc {
		if origInc[i] != backInc[i] {
			t.Fatalf("income[%d] mismatch", i)
		}
	}
	origSal, _ := tab.Strings("salary_over_50k")
	backSal, _ := back.Strings("salary_over_50k")
	for i := range origSal {
		if origSal[i] != backSal[i] {
			t.Fatalf("salary[%d] mismatch", i)
		}
	}
}

func TestReadCSVDefaultsToCategorical(t *testing.T) {
	csvData := "name,score\nalice,10\nbob,20\n"
	tab, err := ReadCSV(strings.NewReader(csvData), nil)
	if err != nil {
		t.Fatal(err)
	}
	col, err := tab.Column("score")
	if err != nil {
		t.Fatal(err)
	}
	if col.Type != Categorical {
		t.Errorf("unspecified column type = %v, want Categorical", col.Type)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), nil); err == nil {
		t.Error("expected error for empty input")
	}
	badFloat := "x\nnot-a-number\n"
	if _, err := ReadCSV(strings.NewReader(badFloat), []ColumnSpec{{Name: "x", Type: Float64}}); err == nil {
		t.Error("expected parse error for bad float")
	}
	badInt := "x\n1.5\n"
	if _, err := ReadCSV(strings.NewReader(badInt), []ColumnSpec{{Name: "x", Type: Int64}}); err == nil {
		t.Error("expected parse error for bad int")
	}
	badBool := "x\nmaybe\n"
	if _, err := ReadCSV(strings.NewReader(badBool), []ColumnSpec{{Name: "x", Type: Bool}}); err == nil {
		t.Error("expected parse error for bad bool")
	}
}
