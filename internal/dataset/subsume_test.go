package dataset

import (
	"math/rand"
	"sort"
	"testing"
)

// This file tests the SelectionCache's subsumption path: a conjunction served
// from a cached prefix must be bitmap-word-identical to the cold compile, no
// matter what happens to be cached, and the hit/partial/miss accounting must
// witness which path served it.

// requireSameBitmap compares two selections word for word.
func requireSameBitmap(t *testing.T, label string, got, want *Selection) {
	t.Helper()
	if got.Len() != want.Len() || got.Count() != want.Count() {
		t.Fatalf("%s: len %d/%d count %d/%d", label, got.Len(), want.Len(), got.Count(), want.Count())
	}
	for i, w := range want.words {
		if got.words[i] != w {
			t.Fatalf("%s: bitmap word %d differs: %064b vs %064b", label, i, got.words[i], w)
		}
	}
}

// conjunctionLeaves draws 2..6 leaf predicates for a conjunction.
func conjunctionLeaves(rng *rand.Rand) []Predicate {
	n := 2 + rng.Intn(5)
	terms := make([]Predicate, n)
	for i := range terms {
		terms[i] = randomPredicate(rng, 0)
	}
	return terms
}

// TestSelectionCacheSubsumedEqualsCold is the subsumption property test:
// whatever sub-conjunction happens to be cached — a canonical-order prefix
// (the partial-hit case), an arbitrary subset, or nothing — the cached path
// must return exactly the cold compile's bitmap, and must error exactly when
// the cold path errors.
func TestSelectionCacheSubsumedEqualsCold(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tab := randomTable(rng)
		terms := conjunctionLeaves(rng)
		full := And{Terms: terms}
		cache := NewSelectionCache(tab)

		// Warm the cache with one of: nothing, a canonical-order prefix of the
		// conjunction, or an arbitrary subset of its terms.
		switch rng.Intn(3) {
		case 1:
			ordered := append([]Predicate(nil), terms...)
			keys := make([]string, len(ordered))
			ok := true
			for i, term := range ordered {
				k, err := CanonicalPredicateKey(term)
				if err != nil {
					ok = false
					break
				}
				keys[i] = k
			}
			if ok {
				sort.Sort(&predsByKey{keys: keys, terms: ordered})
				n := 1 + rng.Intn(len(ordered)-1)
				cache.Where(And{Terms: ordered[:n]}) // error here is fine: warm best-effort
			}
		case 2:
			n := 1 + rng.Intn(len(terms))
			cache.Where(And{Terms: terms[:n]})
		}

		cold, coldErr := tab.Where(full)
		got, gotErr := cache.Where(full)
		if coldErr != nil {
			// The cached path may only out-succeed the cold one through the
			// empty-accumulator short-circuit: a cached empty prefix decides
			// the conjunction before the erroring term is reached, exactly as
			// where's own And short-circuit does in declaration order.
			if gotErr == nil && got.Count() != 0 {
				t.Fatalf("seed %d: cold errors (%v) but cache served a non-empty selection", seed, coldErr)
			}
			continue
		}
		if gotErr != nil {
			t.Fatalf("seed %d: cold succeeds but cache errors: %v", seed, gotErr)
		}
		requireSameBitmap(t, "cached vs cold", got, cold)

		// The result was stored under the full key, so asking again must be an
		// exact hit returning the same bitmap.
		hitsBefore, _, _ := cache.Stats()
		again, err := cache.Where(full)
		if err != nil {
			t.Fatalf("seed %d: exact-hit re-query: %v", seed, err)
		}
		if hitsBefore2, _, _ := cache.Stats(); hitsBefore2 != hitsBefore+1 {
			t.Fatalf("seed %d: re-query was not an exact hit", seed)
		}
		requireSameBitmap(t, "re-query", again, cold)
	}
}

// TestSelectionCachePartialHitPath pins the accounting of the subsumption
// fast path: with the prefix cached, the extended conjunction is a partial
// hit (not a miss), repeating it is an exact hit, and the served bitmap is
// the cold compile's.
func TestSelectionCachePartialHitPath(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tab := randomTable(rng)
	cache := NewSelectionCache(tab)
	// "equals" keys sort before "range" keys, so the cached pair is the
	// canonical 2-term prefix of the 3-term conjunction.
	prefix := And{Terms: []Predicate{
		Equals{Column: "color", Value: "red"},
		Equals{Column: "flag", Value: "true"},
	}}
	full := And{Terms: []Predicate{
		Range{Column: "score", Low: -100, High: 100},
		prefix.Terms[0],
		prefix.Terms[1],
	}}
	if _, err := cache.Where(prefix); err != nil {
		t.Fatal(err)
	}
	hits0, partial0, misses0 := cache.Stats()

	got, err := cache.Where(full)
	if err != nil {
		t.Fatal(err)
	}
	hits1, partial1, misses1 := cache.Stats()
	if partial1 != partial0+1 || hits1 != hits0 || misses1 != misses0 {
		t.Fatalf("extended query: hits %d->%d partial %d->%d misses %d->%d; want exactly one partial hit",
			hits0, hits1, partial0, partial1, misses0, misses1)
	}
	cold, err := tab.Where(full)
	if err != nil {
		t.Fatal(err)
	}
	requireSameBitmap(t, "partial-hit result", got, cold)

	if _, err := cache.Where(full); err != nil {
		t.Fatal(err)
	}
	hits2, partial2, _ := cache.Stats()
	if hits2 != hits1+1 || partial2 != partial1 {
		t.Fatalf("repeat query: hits %d->%d partial %d->%d; want exactly one exact hit", hits1, hits2, partial1, partial2)
	}
}

// TestSelectionCacheKeyOrderInsensitive pins the canonical-key fix for
// And-trees: P∧Q and Q∧P share one cache entry (the regression behind
// order-sensitive keys was two entries and zero sharing).
func TestSelectionCacheKeyOrderInsensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tab := randomTable(rng)
	cache := NewSelectionCache(tab)
	p := Equals{Column: "color", Value: "blue"}
	q := GreaterThan{Column: "score", Threshold: 0}
	first, err := cache.Where(And{Terms: []Predicate{p, q}})
	if err != nil {
		t.Fatal(err)
	}
	second, err := cache.Where(And{Terms: []Predicate{q, p}})
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatal("reordered conjunction compiled a second bitmap; want the cached one")
	}
	if hits, _, misses := cache.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats: %d hits %d misses; want 1 hit (reordered query) and 1 miss (first compile)", hits, misses)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d entries; want 1", cache.Len())
	}
}
