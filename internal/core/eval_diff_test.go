package core

import (
	"math/rand"
	"testing"

	"aware/internal/dataset"
	"aware/internal/stats"
)

// This file checks the vectorized evaluation layer against the
// pre-vectorization implementation, kept here verbatim as the reference: for
// randomized tables and filters, FilterVsPopulationTest and ComparisonTest
// must produce bit-for-bit identical counts, statistics and p-values.

// legacyReferenceCounts is the old materializing referenceCounts.
func legacyReferenceCounts(ref, sub *dataset.Table, target string) ([]int, error) {
	col, err := ref.Column(target)
	if err != nil {
		return nil, err
	}
	if col.Type == dataset.Categorical || col.Type == dataset.Bool {
		cats, err := ref.Categories(target)
		if err != nil {
			return nil, err
		}
		return sub.CountsFor(target, cats)
	}
	all, err := ref.Floats(target)
	if err != nil {
		return nil, err
	}
	hist, err := stats.NewHistogram(all, numericBins)
	if err != nil {
		return nil, err
	}
	vals, err := sub.Floats(target)
	if err != nil {
		return nil, err
	}
	counts := make([]int, len(hist.Counts))
	lo := hist.Edges[0]
	hi := hist.Edges[len(hist.Edges)-1]
	width := (hi - lo) / float64(len(counts))
	if width <= 0 {
		counts[0] = len(vals)
		return counts, nil
	}
	for _, v := range vals {
		idx := int((v - lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= len(counts) {
			idx = len(counts) - 1
		}
		counts[idx]++
	}
	return counts, nil
}

// legacyFilterVsPopulationTest is the old materializing rule-2 test.
func legacyFilterVsPopulationTest(ref *dataset.Table, target string, filter dataset.Predicate) (stats.TestResult, int, error) {
	sub, err := legacyFilter(ref, filter)
	if err != nil {
		return stats.TestResult{}, 0, err
	}
	observed, err := legacyReferenceCounts(ref, sub, target)
	if err != nil {
		return stats.TestResult{}, 0, err
	}
	popCounts, err := legacyReferenceCounts(ref, ref, target)
	if err != nil {
		return stats.TestResult{}, 0, err
	}
	expected := make([]float64, len(popCounts))
	for i, c := range popCounts {
		expected[i] = float64(c)
	}
	test, err := stats.ChiSquaredGoodnessOfFit(observed, expected)
	if err != nil {
		return stats.TestResult{}, 0, err
	}
	return test, sub.NumRows(), nil
}

// legacyComparisonTest is the old materializing rule-3 test.
func legacyComparisonTest(ref *dataset.Table, target string, filterA, filterB dataset.Predicate) (stats.TestResult, int, int, error) {
	subA, err := legacyFilter(ref, filterA)
	if err != nil {
		return stats.TestResult{}, 0, 0, err
	}
	subB, err := legacyFilter(ref, filterB)
	if err != nil {
		return stats.TestResult{}, 0, 0, err
	}
	countsA, err := legacyReferenceCounts(ref, subA, target)
	if err != nil {
		return stats.TestResult{}, 0, 0, err
	}
	countsB, err := legacyReferenceCounts(ref, subB, target)
	if err != nil {
		return stats.TestResult{}, 0, 0, err
	}
	test, err := stats.ChiSquaredIndependence([][]int{countsA, countsB})
	if err != nil {
		return stats.TestResult{}, 0, 0, err
	}
	return test, subA.NumRows(), subB.NumRows(), nil
}

// legacyFilter materializes a sub-table with the row-at-a-time reference
// implementation (the pre-vectorization Table.Filter).
func legacyFilter(t *dataset.Table, p dataset.Predicate) (*dataset.Table, error) {
	if p == nil {
		return t, nil
	}
	var indices []int
	for i := 0; i < t.NumRows(); i++ {
		ok, err := p.Matches(t, i)
		if err != nil {
			return nil, err
		}
		if ok {
			indices = append(indices, i)
		}
	}
	return t.Select(indices)
}

func diffTestTable(rng *rand.Rand, rows int) *dataset.Table {
	groups := []string{"a", "b", "c"}
	gs := make([]string, rows)
	flags := make([]bool, rows)
	ages := make([]float64, rows)
	for i := range gs {
		gs[i] = groups[rng.Intn(len(groups))]
		flags[i] = rng.Intn(3) == 0
		ages[i] = 18 + rng.Float64()*50
	}
	tab, err := dataset.NewTable(
		dataset.NewCategoricalColumn("group", gs),
		dataset.NewBoolColumn("flag", flags),
		dataset.NewFloatColumn("age", ages),
	)
	if err != nil {
		panic(err)
	}
	return tab
}

func diffFilters(rng *rand.Rand) []dataset.Predicate {
	return []dataset.Predicate{
		nil,
		dataset.Equals{Column: "group", Value: "a"},
		dataset.Equals{Column: "flag", Value: "true"},
		dataset.NewIn("group", "b", "c"),
		dataset.Range{Column: "age", Low: 25, High: 45},
		dataset.GreaterThan{Column: "age", Threshold: 30 + rng.Float64()*10},
		dataset.Not{Inner: dataset.Equals{Column: "group", Value: "b"}},
		dataset.And{Terms: []dataset.Predicate{
			dataset.Equals{Column: "flag", Value: "false"},
			dataset.GreaterThan{Column: "age", Threshold: 40},
		}},
		dataset.Or{Terms: []dataset.Predicate{
			dataset.Equals{Column: "group", Value: "c"},
			dataset.Range{Column: "age", Low: 20, High: 25},
		}},
	}
}

func sameTest(t *testing.T, label string, got, want stats.TestResult) {
	t.Helper()
	if got.PValue != want.PValue || got.Statistic != want.Statistic || got.DF != want.DF || got.EffectSize != want.EffectSize {
		t.Errorf("%s: vectorized %+v != legacy %+v", label, got, want)
	}
}

func TestFilterVsPopulationMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		tab := diffTestTable(rng, 50+rng.Intn(300))
		sel := dataset.NewSelectionCache(tab)
		for _, target := range []string{"group", "flag", "age"} {
			for fi, filter := range diffFilters(rng) {
				label := describeFilter(filter)
				gotTest, gotN, gotErr := FilterVsPopulationTestWith(sel, target, filter)
				wantTest, wantN, wantErr := legacyFilterVsPopulationTest(tab, target, filter)
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("trial %d filter %d (%s) target %s: error mismatch: vectorized %v, legacy %v",
						trial, fi, label, target, gotErr, wantErr)
				}
				if gotErr != nil {
					continue
				}
				if gotN != wantN {
					t.Errorf("%s | %s: support %d != legacy %d", target, label, gotN, wantN)
				}
				sameTest(t, target+" | "+label, gotTest, wantTest)
			}
		}
	}
}

func TestComparisonMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 10; trial++ {
		tab := diffTestTable(rng, 80+rng.Intn(200))
		sel := dataset.NewSelectionCache(tab)
		filters := diffFilters(rng)
		for _, target := range []string{"group", "flag", "age"} {
			for i := 0; i < len(filters); i++ {
				fa, fb := filters[i], filters[(i+3)%len(filters)]
				gotTest, gotA, gotB, gotErr := ComparisonTestWith(sel, target, fa, fb)
				wantTest, wantA, wantB, wantErr := legacyComparisonTest(tab, target, fa, fb)
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("trial %d target %s: error mismatch: vectorized %v, legacy %v", trial, target, gotErr, wantErr)
				}
				if gotErr != nil {
					continue
				}
				if gotA != wantA || gotB != wantB {
					t.Errorf("target %s: supports (%d,%d) != legacy (%d,%d)", target, gotA, gotB, wantA, wantB)
				}
				sameTest(t, target, gotTest, wantTest)
			}
		}
	}
}
