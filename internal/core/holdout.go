package core

import (
	"fmt"
	"math/rand"

	"aware/internal/dataset"
	"aware/internal/stats"
)

// HoldoutResult reports the outcome of re-validating a comparison on a
// hold-out split, the procedure analysed (and criticised) in Section 4.1: a
// finding counts as confirmed only when both the exploration and the
// validation half reject at level alpha, which lowers the effective
// significance level to roughly alpha² but also multiplies the miss rates.
type HoldoutResult struct {
	// Exploration and Validation are the two independent test results.
	Exploration stats.TestResult
	Validation  stats.TestResult
	// Confirmed is true when both halves reject at Alpha.
	Confirmed bool
	// Alpha is the per-half significance level that was used.
	Alpha float64
}

// HoldoutValidator splits a dataset into an exploration and a validation half
// and re-tests mean-comparison findings on both, mirroring the paper's
// Section 4.1 analysis. It exists so the hold-out experiment and bench can
// quantify the power loss relative to testing on the full data.
type HoldoutValidator struct {
	exploration *dataset.Table
	validation  *dataset.Table
	alpha       float64
}

// NewHoldoutValidator splits data into an exploration fraction and a
// validation remainder using rng.
func NewHoldoutValidator(data *dataset.Table, explorationFraction, alpha float64, rng *rand.Rand) (*HoldoutValidator, error) {
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("core: holdout alpha must be in (0, 1), got %v", alpha)
	}
	explore, validate, err := data.Split(rng, explorationFraction)
	if err != nil {
		return nil, err
	}
	return &HoldoutValidator{exploration: explore, validation: validate, alpha: alpha}, nil
}

// Exploration returns the exploration half.
func (h *HoldoutValidator) Exploration() *dataset.Table { return h.exploration }

// Validation returns the hold-out half.
func (h *HoldoutValidator) Validation() *dataset.Table { return h.validation }

// CompareMeans tests whether the mean of numericAttr differs between the
// filtered sub-population and its complement, independently on the
// exploration and validation halves, and reports whether the finding is
// confirmed by both.
func (h *HoldoutValidator) CompareMeans(numericAttr string, filter dataset.Predicate, alt stats.Alternative) (HoldoutResult, error) {
	run := func(t *dataset.Table) (stats.TestResult, error) {
		in, err := t.Filter(filter)
		if err != nil {
			return stats.TestResult{}, err
		}
		out, err := t.Filter(dataset.Not{Inner: filter})
		if err != nil {
			return stats.TestResult{}, err
		}
		xs, err := in.Floats(numericAttr)
		if err != nil {
			return stats.TestResult{}, err
		}
		ys, err := out.Floats(numericAttr)
		if err != nil {
			return stats.TestResult{}, err
		}
		return stats.WelchTTest(xs, ys, alt)
	}
	explorationRes, err := run(h.exploration)
	if err != nil {
		return HoldoutResult{}, fmt.Errorf("core: holdout exploration test: %w", err)
	}
	validationRes, err := run(h.validation)
	if err != nil {
		return HoldoutResult{}, fmt.Errorf("core: holdout validation test: %w", err)
	}
	return HoldoutResult{
		Exploration: explorationRes,
		Validation:  validationRes,
		Confirmed:   explorationRes.PValue <= h.alpha && validationRes.PValue <= h.alpha,
		Alpha:       h.alpha,
	}, nil
}
