package core

import (
	"fmt"
	"math/rand"

	"aware/internal/dataset"
	"aware/internal/obs"
	"aware/internal/stats"
)

// HoldoutResult reports the outcome of re-validating a comparison on a
// hold-out split, the procedure analysed (and criticised) in Section 4.1: a
// finding counts as confirmed only when both the exploration and the
// validation half reject at level alpha, which lowers the effective
// significance level to roughly alpha² but also multiplies the miss rates.
type HoldoutResult struct {
	// Exploration and Validation are the two independent test results.
	Exploration stats.TestResult
	Validation  stats.TestResult
	// Confirmed is true when both halves reject at Alpha.
	Confirmed bool
	// Alpha is the per-half significance level that was used.
	Alpha float64
}

// HoldoutValidator splits a dataset into an exploration and a validation half
// and re-tests findings on both, mirroring the paper's Section 4.1 analysis.
// CompareMeans re-validates a single mean comparison; ReplayLog generalizes
// the procedure to whole exploration logs by replaying a recorded []Step on
// each half and comparing the resulting hypothesis streams. It exists so the
// hold-out experiment and bench can quantify the power loss relative to
// testing on the full data.
type HoldoutValidator struct {
	exploration *dataset.Table
	validation  *dataset.Table
	// Per-half filter-bitmap caches: a replayed log applies the same filter
	// chains over and over (and CompareMeans both a filter and its
	// complement), so each half compiles every distinct predicate once.
	explorationSel *dataset.SelectionCache
	validationSel  *dataset.SelectionCache
	alpha          float64
}

// NewHoldoutValidator splits data into an exploration fraction and a
// validation remainder using rng.
func NewHoldoutValidator(data *dataset.Table, explorationFraction, alpha float64, rng *rand.Rand) (*HoldoutValidator, error) {
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("core: holdout alpha must be in (0, 1), got %v", alpha)
	}
	explore, validate, err := data.Split(rng, explorationFraction)
	if err != nil {
		return nil, err
	}
	return &HoldoutValidator{
		exploration:    explore,
		validation:     validate,
		explorationSel: dataset.NewSelectionCache(explore),
		validationSel:  dataset.NewSelectionCache(validate),
		alpha:          alpha,
	}, nil
}

// Exploration returns the exploration half.
func (h *HoldoutValidator) Exploration() *dataset.Table { return h.exploration }

// Validation returns the hold-out half.
func (h *HoldoutValidator) Validation() *dataset.Table { return h.validation }

// CompareMeans tests whether the mean of numericAttr differs between the
// filtered sub-population and its complement, independently on the
// exploration and validation halves, and reports whether the finding is
// confirmed by both.
func (h *HoldoutValidator) CompareMeans(numericAttr string, filter dataset.Predicate, alt stats.Alternative) (HoldoutResult, error) {
	return h.CompareMeansSpan(numericAttr, filter, alt, nil)
}

// CompareMeansSpan is CompareMeans with one step-depth span per holdout half
// recorded under parent (nil parent: identical to CompareMeans), so a traced
// validation request attributes its time to the exploration and validation
// replays separately, down to their kernels.
func (h *HoldoutValidator) CompareMeansSpan(numericAttr string, filter dataset.Predicate, alt stats.Alternative, parent *obs.Span) (HoldoutResult, error) {
	run := func(sel *dataset.SelectionCache, half string) (stats.TestResult, error) {
		span := parent.Child(obs.KindStep, "holdout.compare_means")
		defer span.End()
		span.Set("half", half)
		span.Set("rows", sel.Table().NumRows())
		in, err := sel.ViewSpan(filter, span)
		if err != nil {
			return stats.TestResult{}, err
		}
		// The complement is a bitmap flip of the cached filter selection; no
		// second scan, no materialized sub-table.
		out, err := dataset.NewView(sel.Table(), in.Selection().Not())
		if err != nil {
			return stats.TestResult{}, err
		}
		xs, err := in.FloatsSpan(numericAttr, span)
		if err != nil {
			return stats.TestResult{}, err
		}
		ys, err := out.FloatsSpan(numericAttr, span)
		if err != nil {
			return stats.TestResult{}, err
		}
		return stats.WelchTTest(xs, ys, alt)
	}
	explorationRes, err := run(h.explorationSel, "exploration")
	if err != nil {
		return HoldoutResult{}, fmt.Errorf("core: holdout exploration test: %w", err)
	}
	validationRes, err := run(h.validationSel, "validation")
	if err != nil {
		return HoldoutResult{}, fmt.Errorf("core: holdout validation test: %w", err)
	}
	return HoldoutResult{
		Exploration: explorationRes,
		Validation:  validationRes,
		Confirmed:   explorationRes.PValue <= h.alpha && validationRes.PValue <= h.alpha,
		Alpha:       h.alpha,
	}, nil
}

// HypothesisValidation is the hold-out verdict on one hypothesis of a
// replayed exploration log.
type HypothesisValidation struct {
	// Seq is the journal position of the step that created the hypothesis.
	Seq int
	// Kind is the step's wire name (e.g. "compare_means").
	Kind string
	// HypothesisID is the hypothesis's ID, identical in both replayed
	// sessions because replay is structurally deterministic.
	HypothesisID int
	// Null echoes the hypothesis's null description from the exploration
	// replay.
	Null string
	// Status is the hypothesis's final lifecycle status on the exploration
	// half (superseded and deleted hypotheses are reported but typically
	// filtered out by callers).
	Status HypothesisStatus
	// Exploration and Validation are the two independent test results.
	Exploration stats.TestResult
	Validation  stats.TestResult
	// Validated reports whether the validation replay reached this
	// hypothesis; it is false for hypotheses past the point where the
	// validation half's α-wealth ran out.
	Validated bool
	// Confirmed is true when the hypothesis was validated and both halves
	// reject at the validator's per-half alpha.
	Confirmed bool
}

// ReplayValidation is the outcome of re-validating a whole exploration log on
// a hold-out split.
type ReplayValidation struct {
	// Alpha is the per-half significance level that was used.
	Alpha float64
	// Hypotheses holds one verdict per hypothesis the log produced, in
	// creation order (every step kind that tests — not just mean
	// comparisons).
	Hypotheses []HypothesisValidation
	// Confirmed counts the active hypotheses confirmed by both halves.
	Confirmed int
	// ActiveTotal counts the active hypotheses of the exploration replay.
	ActiveTotal int
	// ExplorationApplied and ValidationApplied count the steps each half
	// replayed before stopping. A recorded log can stop early on a half-size
	// split — a filter that matched a handful of rows on the full data may
	// select nothing here, and α-wealth runs out sooner — so a shortfall
	// against len(steps) means "the verdicts cover a prefix", not an error.
	ExplorationApplied int
	ValidationApplied  int
}

// ReplayLog replays a recorded exploration log independently on the
// exploration and validation halves and reports, for every hypothesis the log
// produces, whether the validation half confirms it: both halves must reject
// at the validator's per-half alpha (the Section 4.1 procedure, generalized
// from single mean comparisons to arbitrary step sequences).
//
// Each half replays the longest step prefix it can: the first step that fails
// on a half (degenerate sub-population, exhausted α-wealth) stops that half's
// replay rather than failing the call — skipping individual steps would
// desynchronize the visualization and hypothesis IDs later steps refer to.
// The validation half replays at most the exploration half's prefix, which
// keeps the two hypothesis streams index-aligned; hypotheses past the
// validation prefix are reported with Validated == false.
//
// The two replays run sequentially and reset opts.Policy when they start, so
// opts must not carry the Policy instance of a session that is still live —
// pass a fresh policy, or leave it nil for the paper's default.
func (h *HoldoutValidator) ReplayLog(opts Options, steps []Step) (ReplayValidation, error) {
	return h.ReplayLogSpan(opts, steps, nil)
}

// ReplayLogSpan is ReplayLog with one step-depth span per replayed half
// recorded under parent (nil parent: identical to ReplayLog). Each half's
// span nests the step spans of its replay, which in turn nest their kernels,
// so a traced holdout request explains exactly where a long replay spent its
// time and on which half.
func (h *HoldoutValidator) ReplayLogSpan(opts Options, steps []Step, parent *obs.Span) (ReplayValidation, error) {
	replayPrefix := func(data *dataset.Table, sel *dataset.SelectionCache, limit int, half string) (*Session, int, error) {
		span := parent.Child(obs.KindStep, "holdout.replay")
		defer span.End()
		span.Set("half", half)
		span.Set("rows", data.NumRows())
		span.Set("steps", limit)
		// Each half replays against its own filter-bitmap cache (any caller
		// cache in opts is bound to the full table, not the halves), so the
		// N-step replay compiles each distinct filter once instead of
		// materializing N sub-tables.
		opts := opts
		opts.Selections = sel
		sess, err := NewSession(data, opts)
		if err != nil {
			return nil, 0, err
		}
		applied := 0
		for _, step := range steps[:limit] {
			if _, err := sess.ApplyTraced(span, step); err != nil {
				break
			}
			applied++
		}
		span.Set("applied", applied)
		return sess, applied, nil
	}
	exploration, explApplied, err := replayPrefix(h.exploration, h.explorationSel, len(steps), "exploration")
	if err != nil {
		return ReplayValidation{}, err
	}
	validation, validApplied, err := replayPrefix(h.validation, h.validationSel, explApplied, "validation")
	if err != nil {
		return ReplayValidation{}, err
	}

	explHyps := exploration.Hypotheses()
	validHyps := validation.Hypotheses()
	out := ReplayValidation{
		Alpha:              h.alpha,
		Hypotheses:         make([]HypothesisValidation, 0, len(explHyps)),
		ExplorationApplied: explApplied,
		ValidationApplied:  validApplied,
	}
	// Map each hypothesis back to the journal entry that created it.
	seqOf := make(map[int]int, len(explHyps))
	kindOf := make(map[int]string, len(explHyps))
	for _, entry := range exploration.Log() {
		if entry.HypothesisID != 0 {
			seqOf[entry.HypothesisID] = entry.Seq
			kindOf[entry.HypothesisID] = entry.Step.Kind()
		}
	}
	for i, hyp := range explHyps {
		hv := HypothesisValidation{
			Seq:          seqOf[hyp.ID],
			Kind:         kindOf[hyp.ID],
			HypothesisID: hyp.ID,
			Null:         hyp.Null,
			Status:       hyp.Status,
			Exploration:  hyp.Test,
		}
		if i < len(validHyps) {
			hv.Validated = true
			hv.Validation = validHyps[i].Test
			hv.Confirmed = hyp.Test.PValue <= h.alpha && validHyps[i].Test.PValue <= h.alpha
		}
		out.Hypotheses = append(out.Hypotheses, hv)
		if hyp.Status == StatusActive {
			out.ActiveTotal++
			if hv.Confirmed {
				out.Confirmed++
			}
		}
	}
	return out, nil
}
