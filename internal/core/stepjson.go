package core

import (
	"bytes"
	"encoding/json"
	"fmt"

	"aware/internal/dataset"
)

// Step JSON wire format. Every step kind maps to a tagged object so that
// remote clients (cmd/awared's POST /sessions/{id}/steps endpoint), journal
// files and recorded exploration logs share one lossless representation:
//
//	{"op": "add_visualization", "target": "gender", "predicate": {...}}
//	{"op": "compare_visualizations", "a": 1, "b": 2}
//	{"op": "compare_means", "attribute": "age", "a": 1, "b": 2}
//	{"op": "compare_distributions", "attribute": "age", "a": 1, "b": 2}
//	{"op": "test_against_expectation", "visualization": 1, "expected": {"Male": 3, "Female": 1}}
//	{"op": "declare_descriptive", "visualization": 2}
//	{"op": "star", "hypothesis": 3, "starred": true}
//	{"op": "derive_column", "name": "wage_decade", "expression": {...}}
//	{"op": "join_dataset", "dataset": "regions", "left_key": "region", "right_key": "name", "prefix": "region_"}
//	{"op": "group_by", "row": "education", "col": "gender", "predicate": {...}}
//
// Predicates reuse the dataset package's predicate wire format and derive
// expressions its expression wire format. Decoding is strict: unknown fields,
// missing ops and missing required fields are errors, and every step
// round-trips losslessly (MarshalStep ∘ UnmarshalStep is the identity on the
// closed step set).

// stepJSON is the tagged union each step encodes to. Exactly the fields
// relevant to Op are populated.
type stepJSON struct {
	Op            string             `json:"op"`
	Target        string             `json:"target,omitempty"`
	Predicate     json.RawMessage    `json:"predicate,omitempty"`
	Attribute     string             `json:"attribute,omitempty"`
	A             int                `json:"a,omitempty"`
	B             int                `json:"b,omitempty"`
	Visualization int                `json:"visualization,omitempty"`
	Expected      map[string]float64 `json:"expected,omitempty"`
	Hypothesis    int                `json:"hypothesis,omitempty"`
	Starred       *bool              `json:"starred,omitempty"`
	Name          string             `json:"name,omitempty"`
	Expression    json.RawMessage    `json:"expression,omitempty"`
	Dataset       string             `json:"dataset,omitempty"`
	LeftKey       string             `json:"left_key,omitempty"`
	RightKey      string             `json:"right_key,omitempty"`
	Prefix        string             `json:"prefix,omitempty"`
	Row           string             `json:"row,omitempty"`
	Col           string             `json:"col,omitempty"`
}

// encodeStep converts a step into its wire representation.
func encodeStep(s Step) (*stepJSON, error) {
	switch st := s.(type) {
	case AddVisualization:
		out := &stepJSON{Op: st.Kind(), Target: st.Target}
		if st.Filter != nil {
			pred, err := dataset.MarshalPredicate(st.Filter)
			if err != nil {
				return nil, fmt.Errorf("core: encoding %s filter: %w", st.Kind(), err)
			}
			out.Predicate = pred
		}
		return out, nil
	case CompareVisualizations:
		return &stepJSON{Op: st.Kind(), A: st.A, B: st.B}, nil
	case CompareMeans:
		return &stepJSON{Op: st.Kind(), Attribute: st.Attribute, A: st.A, B: st.B}, nil
	case CompareDistributions:
		return &stepJSON{Op: st.Kind(), Attribute: st.Attribute, A: st.A, B: st.B}, nil
	case TestAgainstExpectation:
		return &stepJSON{Op: st.Kind(), Visualization: st.Visualization, Expected: st.Expected}, nil
	case DeclareDescriptive:
		return &stepJSON{Op: st.Kind(), Visualization: st.Visualization}, nil
	case Star:
		starred := st.Starred
		return &stepJSON{Op: st.Kind(), Hypothesis: st.Hypothesis, Starred: &starred}, nil
	case DeriveColumn:
		expr, err := dataset.MarshalExpr(st.Expr)
		if err != nil {
			return nil, fmt.Errorf("core: encoding %s expression: %w", st.Kind(), err)
		}
		return &stepJSON{Op: st.Kind(), Name: st.Name, Expression: expr}, nil
	case JoinDataset:
		return &stepJSON{Op: st.Kind(), Dataset: st.Dataset, LeftKey: st.LeftKey, RightKey: st.RightKey, Prefix: st.Prefix}, nil
	case GroupByHypothesis:
		out := &stepJSON{Op: st.Kind(), Row: st.RowAttr, Col: st.ColAttr}
		if st.Filter != nil {
			pred, err := dataset.MarshalPredicate(st.Filter)
			if err != nil {
				return nil, fmt.Errorf("core: encoding %s filter: %w", st.Kind(), err)
			}
			out.Predicate = pred
		}
		return out, nil
	case nil:
		return nil, fmt.Errorf("%w: cannot encode nil step", ErrUnknownStep)
	default:
		return nil, fmt.Errorf("%w: cannot encode step type %T", ErrUnknownStep, s)
	}
}

// decodeStep converts a wire representation back into a step.
func decodeStep(sj *stepJSON) (Step, error) {
	if sj == nil {
		return nil, fmt.Errorf("core: missing step object")
	}
	switch sj.Op {
	case "add_visualization":
		if sj.Target == "" {
			return nil, fmt.Errorf("core: add_visualization step requires a target")
		}
		st := AddVisualization{Target: sj.Target}
		if len(sj.Predicate) > 0 && !bytes.Equal(sj.Predicate, []byte("null")) {
			filter, err := dataset.UnmarshalPredicate(sj.Predicate)
			if err != nil {
				return nil, fmt.Errorf("core: add_visualization predicate: %w", err)
			}
			st.Filter = filter
		}
		return st, nil
	case "compare_visualizations":
		if sj.A == 0 || sj.B == 0 {
			return nil, fmt.Errorf("core: compare_visualizations step requires visualization ids a and b")
		}
		return CompareVisualizations{A: sj.A, B: sj.B}, nil
	case "compare_means":
		if sj.Attribute == "" {
			return nil, fmt.Errorf("core: compare_means step requires an attribute")
		}
		if sj.A == 0 || sj.B == 0 {
			return nil, fmt.Errorf("core: compare_means step requires visualization ids a and b")
		}
		return CompareMeans{Attribute: sj.Attribute, A: sj.A, B: sj.B}, nil
	case "compare_distributions":
		if sj.Attribute == "" {
			return nil, fmt.Errorf("core: compare_distributions step requires an attribute")
		}
		if sj.A == 0 || sj.B == 0 {
			return nil, fmt.Errorf("core: compare_distributions step requires visualization ids a and b")
		}
		return CompareDistributions{Attribute: sj.Attribute, A: sj.A, B: sj.B}, nil
	case "test_against_expectation":
		if sj.Visualization == 0 {
			return nil, fmt.Errorf("core: test_against_expectation step requires a visualization id")
		}
		return TestAgainstExpectation{Visualization: sj.Visualization, Expected: sj.Expected}, nil
	case "declare_descriptive":
		if sj.Visualization == 0 {
			return nil, fmt.Errorf("core: declare_descriptive step requires a visualization id")
		}
		return DeclareDescriptive{Visualization: sj.Visualization}, nil
	case "star":
		if sj.Hypothesis == 0 {
			return nil, fmt.Errorf("core: star step requires a hypothesis id")
		}
		starred := true
		if sj.Starred != nil {
			starred = *sj.Starred
		}
		return Star{Hypothesis: sj.Hypothesis, Starred: starred}, nil
	case "derive_column":
		if sj.Name == "" {
			return nil, fmt.Errorf("core: derive_column step requires a name")
		}
		if len(sj.Expression) == 0 || bytes.Equal(sj.Expression, []byte("null")) {
			return nil, fmt.Errorf("core: derive_column step requires an expression")
		}
		expr, err := dataset.UnmarshalExpr(sj.Expression)
		if err != nil {
			return nil, fmt.Errorf("core: derive_column expression: %w", err)
		}
		return DeriveColumn{Name: sj.Name, Expr: expr}, nil
	case "join_dataset":
		if sj.Dataset == "" {
			return nil, fmt.Errorf("core: join_dataset step requires a dataset")
		}
		if sj.LeftKey == "" || sj.RightKey == "" {
			return nil, fmt.Errorf("core: join_dataset step requires left_key and right_key")
		}
		return JoinDataset{Dataset: sj.Dataset, LeftKey: sj.LeftKey, RightKey: sj.RightKey, Prefix: sj.Prefix}, nil
	case "group_by":
		if sj.Row == "" || sj.Col == "" {
			return nil, fmt.Errorf("core: group_by step requires row and col attributes")
		}
		st := GroupByHypothesis{RowAttr: sj.Row, ColAttr: sj.Col}
		if len(sj.Predicate) > 0 && !bytes.Equal(sj.Predicate, []byte("null")) {
			filter, err := dataset.UnmarshalPredicate(sj.Predicate)
			if err != nil {
				return nil, fmt.Errorf("core: group_by predicate: %w", err)
			}
			st.Filter = filter
		}
		return st, nil
	case "":
		return nil, fmt.Errorf("core: step object is missing an op")
	default:
		return nil, fmt.Errorf("%w: op %q", ErrUnknownStep, sj.Op)
	}
}

// MarshalStep serializes a step to its JSON wire format.
func MarshalStep(s Step) ([]byte, error) {
	enc, err := encodeStep(s)
	if err != nil {
		return nil, err
	}
	return json.Marshal(enc)
}

// UnmarshalStep parses the JSON wire format into a step. Unknown fields are
// rejected.
func UnmarshalStep(data []byte) (Step, error) {
	var sj stepJSON
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sj); err != nil {
		return nil, fmt.Errorf("core: parsing step JSON: %w", err)
	}
	return decodeStep(&sj)
}

// appliedStepJSON is the wire form of a journal entry.
type appliedStepJSON struct {
	Seq             int             `json:"seq"`
	Step            json.RawMessage `json:"step"`
	VisualizationID int             `json:"visualization_id,omitempty"`
	HypothesisID    int             `json:"hypothesis_id,omitempty"`
}

// MarshalJSON implements json.Marshaler, so a journal serializes directly with
// encoding/json.
func (a AppliedStep) MarshalJSON() ([]byte, error) {
	step, err := MarshalStep(a.Step)
	if err != nil {
		return nil, err
	}
	return json.Marshal(appliedStepJSON{
		Seq:             a.Seq,
		Step:            step,
		VisualizationID: a.VisualizationID,
		HypothesisID:    a.HypothesisID,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (a *AppliedStep) UnmarshalJSON(data []byte) error {
	var aj appliedStepJSON
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&aj); err != nil {
		return fmt.Errorf("core: parsing applied step JSON: %w", err)
	}
	step, err := UnmarshalStep(aj.Step)
	if err != nil {
		return err
	}
	*a = AppliedStep{
		Seq:             aj.Seq,
		Step:            step,
		VisualizationID: aj.VisualizationID,
		HypothesisID:    aj.HypothesisID,
	}
	return nil
}
