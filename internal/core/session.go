package core

import (
	"fmt"
	"math"

	"aware/internal/dataset"
	"aware/internal/investing"
	"aware/internal/obs"
	"aware/internal/plan"
	"aware/internal/stats"
)

// Options configures a Session.
type Options struct {
	// Alpha is the mFDR control level; 0 means the paper default 0.05.
	Alpha float64
	// Policy is the α-investing rule used to assign per-test levels. Nil means
	// the paper's ε-hybrid default (ε = 0.5, γ = δ = 10, unlimited window).
	Policy investing.Policy
	// TargetPower is the power used by the n_H1 "how much more data"
	// annotation; 0 means 0.8.
	TargetPower float64
	// Selections is the filter-bitmap cache the session resolves predicates
	// through. Nil means a fresh private cache over the session's table; a
	// service that runs many sessions over one immutable dataset passes the
	// dataset's shared cache so all of them reuse each other's compiled
	// filters. When set, it must be a cache over the session's own table.
	Selections *dataset.SelectionCache
	// Pool, when non-nil, pins the execution pool the session's table runs its
	// morsel-parallel kernels on (dataset.Table.SetPool applies table-wide, so
	// sessions sharing one table should agree on the pool — a service
	// configures it once at dataset registration instead). The pool is an
	// execution hint only: results are bit-identical on any pool, and
	// dataset.NewPool(1) forces fully sequential execution for deterministic
	// debugging. Nil leaves the table's current pool untouched.
	Pool *dataset.Pool
	// Arena, when non-nil, pins the Selection word arena the session's table
	// compiles filters through (dataset.Table.SetArena — table-wide, like
	// Pool, so sessions sharing one table should agree on it; a service
	// configures it once per registered dataset). With an arena, steady-state
	// filter steps recycle their bitmap words instead of allocating. Like
	// Pool it is an execution hint only: results are bit-identical with or
	// without it. Nil leaves the table's current arena untouched.
	Arena *dataset.WordArena
	// Catalog, when non-nil, resolves registered dataset names for JoinDataset
	// steps (the server passes its dataset registry). Sessions without a
	// catalog reject join steps; every other step works without one.
	Catalog plan.Catalog
}

// Session is one AWARE exploration session over a fixed dataset. It owns the
// visualizations the user has created, the hypotheses derived from them (via
// the heuristics of Section 2.3 or explicit user actions), and the
// α-investing procedure that decides, incrementally and irrevocably, which
// null hypotheses are rejected.
//
// Every mutation is a Step applied through Apply — the exported mutating
// methods (AddVisualization, CompareVisualizations, TestAgainstExpectation,
// CompareMeans, CompareDistributions, DeclareDescriptive, Star) are one-line
// wrappers that build the corresponding Step — and every successful Step is
// recorded in the append-only journal returned by Log, so a session can be
// persisted and reconstructed deterministically with Replay.
//
// Session is not safe for concurrent use: every exported mutating method goes
// through Apply, and the accessors read state Apply mutates. Accessors return
// copied slices, but the *Visualization and *Hypothesis elements point at
// live session state, so even "read-only" use must be serialized with
// writers. A single-user front-end drives a Session from one event loop; a
// multi-session service must own each Session behind a per-session lock and
// finish serializing snapshots before releasing it, as
// internal/server.SessionManager does.
type Session struct {
	data     *dataset.Table
	sel      *dataset.SelectionCache
	catalog  plan.Catalog
	investor *investing.Investor
	alpha    float64
	power    float64

	// trace is the step span of the Apply in flight, set by ApplyTraced for
	// exactly the duration of the dispatch (the single-threaded contract makes
	// a plain field sufficient). Nil — the common case — keeps every kernel
	// call on its untraced fast path.
	trace *obs.Span

	visualizations []*Visualization
	hypotheses     []*Hypothesis
	journal        []AppliedStep
}

// NewSession opens a session over the given table.
func NewSession(data *dataset.Table, opts Options) (*Session, error) {
	if data == nil {
		return nil, fmt.Errorf("core: nil dataset")
	}
	alpha := opts.Alpha
	if alpha == 0 {
		alpha = investing.DefaultAlpha
	}
	cfg, err := investing.NewConfig(alpha)
	if err != nil {
		return nil, err
	}
	policy := opts.Policy
	if policy == nil {
		policy, err = investing.NewHybrid(0.5, 10, 10, cfg.Alpha, cfg.InitialWealth(), 0)
		if err != nil {
			return nil, err
		}
	}
	inv, err := investing.NewInvestor(cfg, policy)
	if err != nil {
		return nil, err
	}
	power := opts.TargetPower
	if power == 0 {
		power = 0.8
	}
	if power <= 0 || power >= 1 {
		return nil, fmt.Errorf("core: target power must be in (0, 1), got %v", power)
	}
	sel := opts.Selections
	if sel == nil {
		sel = dataset.NewSelectionCache(data)
	} else if sel.Table() != data {
		return nil, fmt.Errorf("core: selection cache is bound to a different table than the session")
	}
	if opts.Pool != nil {
		data.SetPool(opts.Pool)
	}
	if opts.Arena != nil {
		data.SetArena(opts.Arena)
	}
	return &Session{data: data, sel: sel, catalog: opts.Catalog, investor: inv, alpha: alpha, power: power}, nil
}

// Data returns the table the session explores.
func (s *Session) Data() *dataset.Table { return s.data }

// Alpha returns the session's mFDR control level.
func (s *Session) Alpha() float64 { return s.alpha }

// PolicyName returns the name of the active investing rule.
func (s *Session) PolicyName() string { return s.investor.PolicyName() }

// Wealth returns the remaining α-wealth.
func (s *Session) Wealth() float64 { return s.investor.Wealth() }

// Visualizations returns the visualizations created so far, in creation order.
func (s *Session) Visualizations() []*Visualization {
	out := make([]*Visualization, len(s.visualizations))
	copy(out, s.visualizations)
	return out
}

// Hypotheses returns every tracked hypothesis in creation order, including
// superseded and deleted ones (the risk gauge shows them greyed out).
func (s *Session) Hypotheses() []*Hypothesis {
	out := make([]*Hypothesis, len(s.hypotheses))
	copy(out, s.hypotheses)
	return out
}

// ActiveHypotheses returns the hypotheses that still count: not superseded,
// not deleted.
func (s *Session) ActiveHypotheses() []*Hypothesis {
	var out []*Hypothesis
	for _, h := range s.hypotheses {
		if h.Status == StatusActive {
			out = append(out, h)
		}
	}
	return out
}

// Discoveries returns the active hypotheses whose null was rejected.
func (s *Session) Discoveries() []*Hypothesis {
	var out []*Hypothesis
	for _, h := range s.ActiveHypotheses() {
		if h.Rejected {
			out = append(out, h)
		}
	}
	return out
}

// ImportantDiscoveries returns the starred discoveries. By Theorem 1 the FDR
// (and mFDR) guarantee of the full discovery set carries over to any subset
// selected independently of the p-values, so the user may report exactly
// these without further correction.
func (s *Session) ImportantDiscoveries() []*Hypothesis {
	var out []*Hypothesis
	for _, h := range s.Discoveries() {
		if h.Starred {
			out = append(out, h)
		}
	}
	return out
}

// visualization looks up a visualization by ID.
func (s *Session) visualization(id int) (*Visualization, error) {
	if id < 1 || id > len(s.visualizations) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownVisualization, id)
	}
	return s.visualizations[id-1], nil
}

// hypothesis looks up a hypothesis by ID.
func (s *Session) hypothesis(id int) (*Hypothesis, error) {
	if id < 1 || id > len(s.hypotheses) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownHypothesis, id)
	}
	return s.hypotheses[id-1], nil
}

// AddVisualization creates a new chart for the target attribute restricted by
// the given filter chain (nil for the whole dataset) and applies the default
// hypothesis heuristics:
//
//   - Rule 1: an unfiltered visualization is descriptive — no hypothesis is
//     created (the returned hypothesis is nil). The user can attach one later
//     with TestAgainstExpectation.
//   - Rule 2: a filtered visualization creates the default hypothesis that the
//     filter makes no difference compared to the distribution of the target
//     over the whole dataset, tested with a χ² goodness-of-fit test.
func (s *Session) AddVisualization(target string, filter dataset.Predicate) (*Visualization, *Hypothesis, error) {
	res, err := s.Apply(AddVisualization{Target: target, Filter: filter})
	if err != nil {
		return nil, nil, err
	}
	return res.Visualization, res.Hypothesis, nil
}

// CompareVisualizations applies heuristic rule 3: the two visualizations show
// the same target attribute under complementary (or simply different) filter
// chains, and the user placed them next to each other, so the default
// hypothesis becomes "the two visualized distributions do not differ", tested
// with a χ² independence test. Any rule-2 hypotheses previously attached to
// the two visualizations are superseded.
func (s *Session) CompareVisualizations(aID, bID int) (*Hypothesis, error) {
	res, err := s.Apply(CompareVisualizations{A: aID, B: bID})
	if err != nil {
		return nil, err
	}
	return res.Hypothesis, nil
}

// TestAgainstExpectation attaches a user-defined hypothesis to an unfiltered
// visualization (rule 1's escape hatch): the user states the proportions they
// expected for the target's categories, and the system tests the observed
// distribution against that expectation with a χ² goodness-of-fit test.
// The expected map gives relative weights per category; missing categories
// count as weight zero.
func (s *Session) TestAgainstExpectation(vizID int, expected map[string]float64) (*Hypothesis, error) {
	res, err := s.Apply(TestAgainstExpectation{Visualization: vizID, Expected: expected})
	if err != nil {
		return nil, err
	}
	return res.Hypothesis, nil
}

// CompareMeans overrides the default distribution comparison with a Welch
// t-test on the means of a numeric attribute between two filtered
// sub-populations — the explicit test of Figure 1 (F) where the user drags
// two age charts together and the default hypothesis m4 is replaced by m4'
// about the average age. Hypotheses previously attached to the two
// visualizations are superseded.
func (s *Session) CompareMeans(numericAttr string, aID, bID int) (*Hypothesis, error) {
	res, err := s.Apply(CompareMeans{Attribute: numericAttr, A: aID, B: bID})
	if err != nil {
		return nil, err
	}
	return res.Hypothesis, nil
}

// CompareDistributions overrides the default comparison with a two-sample
// Kolmogorov–Smirnov test on a numeric attribute between two filtered
// sub-populations — useful when the analyst cares about the whole shape of
// the distribution rather than its mean, or when the attribute is too skewed
// for a t-test. Hypotheses previously attached to the two visualizations are
// superseded, exactly as in CompareMeans.
func (s *Session) CompareDistributions(numericAttr string, aID, bID int) (*Hypothesis, error) {
	res, err := s.Apply(CompareDistributions{Attribute: numericAttr, A: aID, B: bID})
	if err != nil {
		return nil, err
	}
	return res.Hypothesis, nil
}

// DeclareDescriptive marks the hypothesis attached to a visualization as
// deleted: the user states that the chart was purely descriptive (or only a
// stepping stone, Section 2.4). The α-wealth already spent on it is not
// refunded — refunding would break the mFDR guarantee — but the hypothesis no
// longer appears among the session's findings.
func (s *Session) DeclareDescriptive(vizID int) error {
	_, err := s.Apply(DeclareDescriptive{Visualization: vizID})
	return err
}

// Star marks or unmarks a hypothesis as an important discovery (Figure 2 E).
func (s *Session) Star(hypothesisID int, starred bool) error {
	_, err := s.Apply(Star{Hypothesis: hypothesisID, Starred: starred})
	return err
}

// --- step implementations ---
//
// Each of the following performs all fallible work (lookups, statistics, the
// α-investing decision) before mutating session state, so that a failed step
// leaves the session exactly as it was: Apply's atomicity contract.

func (s *Session) addVisualization(target string, filter dataset.Predicate) (*Visualization, *Hypothesis, error) {
	if !s.data.HasColumn(target) {
		return nil, nil, fmt.Errorf("%w: %q", dataset.ErrColumnNotFound, target)
	}
	viz := &Visualization{ID: len(s.visualizations) + 1, Target: target, Filter: filter}
	if filter == nil {
		s.visualizations = append(s.visualizations, viz)
		return viz, nil, nil // Rule 1: descriptive.
	}
	hyp, err := s.testFilterVsPopulation(viz)
	if err != nil {
		return nil, nil, err
	}
	s.visualizations = append(s.visualizations, viz)
	viz.HypothesisID = hyp.ID
	return viz, hyp, nil
}

func (s *Session) compareVisualizations(aID, bID int) (*Hypothesis, error) {
	a, err := s.visualization(aID)
	if err != nil {
		return nil, err
	}
	b, err := s.visualization(bID)
	if err != nil {
		return nil, err
	}
	if a.Target != b.Target {
		return nil, fmt.Errorf("%w: %q vs %q", ErrNotComplementary, a.Target, b.Target)
	}
	test, nA, nB, err := comparisonTest(s.sel, a.Target, a.Filter, b.Filter, s.trace)
	if err != nil {
		return nil, fmt.Errorf("core: comparison hypothesis for %q vs %q: %w", a.Describe(), b.Describe(), err)
	}
	hyp, err := s.record(test, Hypothesis{
		Null:            fmt.Sprintf("%s = %s", a.Describe(), b.Describe()),
		Alternative:     fmt.Sprintf("%s <> %s", a.Describe(), b.Describe()),
		Source:          SourceRule3,
		VisualizationID: a.ID,
		SupportSize:     nA + nB,
	})
	if err != nil {
		return nil, err
	}
	// Supersede the single-visualization hypotheses: the side-by-side
	// comparison replaces them (Section 2.3, rule 3).
	s.supersedeAttached(hyp, a, b)
	return hyp, nil
}

func (s *Session) testAgainstExpectation(vizID int, expected map[string]float64) (*Hypothesis, error) {
	viz, err := s.visualization(vizID)
	if err != nil {
		return nil, err
	}
	sub, err := s.sel.ViewSpan(viz.Filter, s.trace)
	if err != nil {
		return nil, err
	}
	cats, err := s.data.Categories(viz.Target)
	if err != nil {
		return nil, err
	}
	observed, err := sub.CountsForSpan(viz.Target, cats, s.trace)
	if err != nil {
		return nil, err
	}
	weights := make([]float64, len(cats))
	for i, c := range cats {
		weights[i] = expected[c]
	}
	test, err := stats.ChiSquaredGoodnessOfFit(observed, weights)
	if err != nil {
		return nil, fmt.Errorf("core: testing expectation for %q: %w", viz.Describe(), err)
	}
	hyp, err := s.record(test, Hypothesis{
		Null:            fmt.Sprintf("%s = expected distribution", viz.Describe()),
		Alternative:     fmt.Sprintf("%s <> expected distribution", viz.Describe()),
		Source:          SourceUser,
		VisualizationID: viz.ID,
		SupportSize:     sub.NumRows(),
	})
	if err != nil {
		return nil, err
	}
	s.supersedeAttached(hyp, viz)
	return hyp, nil
}

func (s *Session) compareMeans(numericAttr string, aID, bID int) (*Hypothesis, error) {
	a, b, xs, ys, err := s.comparedFloats(numericAttr, aID, bID)
	if err != nil {
		return nil, err
	}
	test, err := stats.WelchTTest(xs, ys, stats.TwoSided)
	if err != nil {
		return nil, fmt.Errorf("core: comparing means of %q: %w", numericAttr, err)
	}
	hyp, err := s.record(test, Hypothesis{
		Null:            fmt.Sprintf("mean %s | (%s) = mean %s | (%s)", numericAttr, describeFilter(a.Filter), numericAttr, describeFilter(b.Filter)),
		Alternative:     fmt.Sprintf("mean %s | (%s) <> mean %s | (%s)", numericAttr, describeFilter(a.Filter), numericAttr, describeFilter(b.Filter)),
		Source:          SourceUser,
		VisualizationID: a.ID,
		SupportSize:     len(xs) + len(ys),
	})
	if err != nil {
		return nil, err
	}
	s.supersedeAttached(hyp, a, b)
	return hyp, nil
}

func (s *Session) compareDistributions(numericAttr string, aID, bID int) (*Hypothesis, error) {
	a, b, xs, ys, err := s.comparedFloats(numericAttr, aID, bID)
	if err != nil {
		return nil, err
	}
	test, err := stats.KolmogorovSmirnov(xs, ys)
	if err != nil {
		return nil, fmt.Errorf("core: comparing distributions of %q: %w", numericAttr, err)
	}
	hyp, err := s.record(test, Hypothesis{
		Null:            fmt.Sprintf("dist %s | (%s) = dist %s | (%s)", numericAttr, describeFilter(a.Filter), numericAttr, describeFilter(b.Filter)),
		Alternative:     fmt.Sprintf("dist %s | (%s) <> dist %s | (%s)", numericAttr, describeFilter(a.Filter), numericAttr, describeFilter(b.Filter)),
		Source:          SourceUser,
		VisualizationID: a.ID,
		SupportSize:     len(xs) + len(ys),
	})
	if err != nil {
		return nil, err
	}
	s.supersedeAttached(hyp, a, b)
	return hyp, nil
}

// comparedFloats resolves the two visualizations of an explicit comparison and
// extracts the numeric attribute from their filtered sub-populations.
func (s *Session) comparedFloats(numericAttr string, aID, bID int) (a, b *Visualization, xs, ys []float64, err error) {
	if a, err = s.visualization(aID); err != nil {
		return nil, nil, nil, nil, err
	}
	if b, err = s.visualization(bID); err != nil {
		return nil, nil, nil, nil, err
	}
	subA, err := s.sel.ViewSpan(a.Filter, s.trace)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	subB, err := s.sel.ViewSpan(b.Filter, s.trace)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if xs, err = subA.FloatsSpan(numericAttr, s.trace); err != nil {
		return nil, nil, nil, nil, err
	}
	if ys, err = subB.FloatsSpan(numericAttr, s.trace); err != nil {
		return nil, nil, nil, nil, err
	}
	return a, b, xs, ys, nil
}

func (s *Session) declareDescriptive(vizID int) error {
	viz, err := s.visualization(vizID)
	if err != nil {
		return err
	}
	if viz.HypothesisID == 0 {
		return nil
	}
	hyp, err := s.hypothesis(viz.HypothesisID)
	if err != nil {
		return err
	}
	hyp.Status = StatusDeleted
	viz.HypothesisID = 0
	return nil
}

func (s *Session) star(hypothesisID int, starred bool) error {
	hyp, err := s.hypothesis(hypothesisID)
	if err != nil {
		return err
	}
	hyp.Starred = starred
	return nil
}

// supersedeAttached marks the active hypotheses currently attached to the
// visualizations as superseded and attaches the replacement in their place.
func (s *Session) supersedeAttached(replacement *Hypothesis, vizzes ...*Visualization) {
	for _, viz := range vizzes {
		if viz.HypothesisID != 0 && viz.HypothesisID != replacement.ID {
			if prev, err := s.hypothesis(viz.HypothesisID); err == nil && prev.Status == StatusActive {
				prev.Status = StatusSuperseded
			}
		}
		viz.HypothesisID = replacement.ID
	}
}

// testFilterVsPopulation runs the rule-2 default hypothesis for a filtered
// visualization.
func (s *Session) testFilterVsPopulation(viz *Visualization) (*Hypothesis, error) {
	test, support, err := filterVsPopulationTest(s.sel, viz.Target, viz.Filter, s.trace)
	if err != nil {
		return nil, fmt.Errorf("core: default hypothesis for %q: %w", viz.Describe(), err)
	}
	return s.record(test, Hypothesis{
		Null:            fmt.Sprintf("%s = %s", viz.Describe(), viz.Target),
		Alternative:     fmt.Sprintf("%s <> %s", viz.Describe(), viz.Target),
		Source:          SourceRule2,
		VisualizationID: viz.ID,
		SupportSize:     support,
	})
}

// record routes a completed statistical test through the α-investing
// procedure, fills in the bookkeeping fields and stores the hypothesis.
func (s *Session) record(test stats.TestResult, proto Hypothesis) (*Hypothesis, error) {
	decision, err := s.investor.Test(test.PValue, investing.TestContext{
		SupportSize:    proto.SupportSize,
		PopulationSize: s.data.NumRows(),
	})
	if err != nil {
		if err == investing.ErrExhausted {
			return nil, ErrWealthExhausted
		}
		return nil, err
	}
	hyp := proto
	hyp.ID = len(s.hypotheses) + 1
	hyp.Status = StatusActive
	hyp.Test = test
	hyp.AlphaInvested = decision.Alpha
	hyp.Rejected = decision.Rejected
	hyp.WealthAfter = decision.WealthAfter
	hyp.PopulationSize = s.data.NumRows()
	hyp.DataMultiplier = s.dataMultiplier(test, proto.SupportSize)
	s.hypotheses = append(s.hypotheses, &hyp)
	return s.hypotheses[len(s.hypotheses)-1], nil
}

// dataMultiplier estimates the n_H1 annotation: how many times the current
// support would be needed for the observed effect to reach the target power at
// the session α. Chi-squared effect sizes (Cramér's V) are treated as Cohen's
// w, for which the same normal-approximation sample-size formula applies.
func (s *Session) dataMultiplier(test stats.TestResult, supportSize int) float64 {
	if supportSize <= 0 {
		return math.Inf(1)
	}
	effect := math.Abs(test.EffectSize)
	if effect == 0 {
		return math.Inf(1)
	}
	mult, err := stats.RequiredMultiplier(supportSize, effect, s.alpha, s.power, stats.TwoSided)
	if err != nil {
		return math.NaN()
	}
	return mult
}
