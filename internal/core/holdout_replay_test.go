package core_test

import (
	"testing"

	"aware/internal/census"
	"aware/internal/core"
	"aware/internal/dataset"
	"aware/internal/stats"
)

// TestHoldoutReplayLogValidatesEveryStepKind records an exploration log with
// five distinct step kinds over the synthetic census and re-validates it on a
// hold-out split: the acceptance criterion for the generalized Section 4.1
// procedure (the old CompareMeans path could only re-validate mean
// comparisons).
func TestHoldoutReplayLogValidatesEveryStepKind(t *testing.T) {
	tab, err := census.Generate(census.Config{Rows: 8000, Seed: 3, SignalStrength: 1})
	if err != nil {
		t.Fatal(err)
	}
	rich := dataset.Equals{Column: census.ColSalaryOver50K, Value: "true"}
	steps := []core.Step{
		core.AddVisualization{Target: census.ColGender, Filter: rich},                     // rule 2
		core.AddVisualization{Target: census.ColGender, Filter: dataset.Not{Inner: rich}}, // rule 2
		core.CompareVisualizations{A: 1, B: 2},                                            // rule 3
		core.AddVisualization{Target: census.ColAge, Filter: rich},                        // rule 2, numeric target
		core.AddVisualization{Target: census.ColAge, Filter: dataset.Not{Inner: rich}},    // rule 2, numeric target
		core.CompareMeans{Attribute: census.ColAge, A: 3, B: 4},                           // t-test
		core.CompareDistributions{Attribute: census.ColHoursPerWeek, A: 3, B: 4},          // KS
		core.AddVisualization{Target: census.ColEducation},                                // descriptive
		core.TestAgainstExpectation{Visualization: 5, Expected: map[string]float64{"HS": 1, "Bachelor": 1, "Master": 1, "PhD": 1}},
		core.Star{Hypothesis: 3, Starred: true},
	}
	kinds := make(map[string]bool)
	for _, s := range steps {
		kinds[s.Kind()] = true
	}
	if len(kinds) < 4 {
		t.Fatalf("the scripted log only has %d distinct step kinds, want >= 4", len(kinds))
	}

	// Record the log on the full data first — the scenario of a user who
	// explored and now wants independent confirmation.
	sess, err := core.Replay(tab, core.Options{}, steps)
	if err != nil {
		t.Fatal(err)
	}
	recorded := core.StepsFromLog(sess.Log())
	if len(recorded) != len(steps) {
		t.Fatalf("journal has %d steps, want %d", len(recorded), len(steps))
	}

	hv, err := core.NewHoldoutValidator(tab, 0.5, 0.05, stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	replay, err := hv.ReplayLog(core.Options{}, recorded)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Alpha != 0.05 {
		t.Errorf("alpha = %v", replay.Alpha)
	}
	// The log creates 7 hypotheses (5 rule-2, 1 superseded pair folded into
	// rule 3 and the t-test, the KS test, the expectation test).
	if len(replay.Hypotheses) != len(sess.Hypotheses()) {
		t.Fatalf("replay reports %d hypotheses, session has %d", len(replay.Hypotheses), len(sess.Hypotheses()))
	}
	validatedKinds := make(map[string]bool)
	for _, hvn := range replay.Hypotheses {
		if hvn.Seq == 0 || hvn.Kind == "" {
			t.Errorf("hypothesis %d not mapped back to a journal entry: %+v", hvn.HypothesisID, hvn)
		}
		if !hvn.Validated {
			t.Errorf("hypothesis %d not validated (wealth should not run out here)", hvn.HypothesisID)
		}
		if hvn.Exploration.Method == "" || hvn.Validation.Method == "" {
			t.Errorf("hypothesis %d missing test results", hvn.HypothesisID)
		}
		if hvn.Confirmed != (hvn.Exploration.PValue <= 0.05 && hvn.Validation.PValue <= 0.05 && hvn.Validated) {
			t.Errorf("hypothesis %d confirmation inconsistent with its p-values", hvn.HypothesisID)
		}
		validatedKinds[hvn.Kind] = true
	}
	if len(validatedKinds) < 4 {
		t.Errorf("re-validated only %d distinct step kinds (%v), want >= 4", len(validatedKinds), validatedKinds)
	}
	if replay.ActiveTotal == 0 {
		t.Error("no active hypotheses in the replay")
	}
	if replay.Confirmed == 0 {
		// The planted census associations are strong; at least the
		// gender/salary comparison should survive a 4000-row half.
		t.Error("no hypothesis was confirmed on the hold-out split")
	}
	if replay.Confirmed > replay.ActiveTotal {
		t.Errorf("confirmed %d > active %d", replay.Confirmed, replay.ActiveTotal)
	}
}

// TestHoldoutReplayLogToleratesHalfOnlyFailures pins the prefix semantics: a
// recorded step that fails on a half-size split (here: a filter matching a
// single row of the full table, so at least one half has no support for it)
// stops that half's replay at the failing step instead of failing the whole
// validation, and the per-half applied counts expose where each stopped.
func TestHoldoutReplayLogToleratesHalfOnlyFailures(t *testing.T) {
	const n = 400
	group := make([]string, n)
	marker := make([]string, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			group[i] = "a"
		} else {
			group[i] = "b"
		}
		marker[i] = "common"
	}
	marker[17] = "rare" // exactly one row: after any split, one half has none
	tab, err := dataset.NewTable(
		dataset.NewCategoricalColumn("group", group),
		dataset.NewCategoricalColumn("marker", marker),
	)
	if err != nil {
		t.Fatal(err)
	}
	steps := []core.Step{
		core.AddVisualization{Target: "group", Filter: dataset.Equals{Column: "marker", Value: "common"}},
		core.AddVisualization{Target: "group", Filter: dataset.Equals{Column: "marker", Value: "rare"}},
		core.AddVisualization{Target: "marker", Filter: dataset.Equals{Column: "group", Value: "a"}},
	}

	hv, err := core.NewHoldoutValidator(tab, 0.5, 0.05, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	replay, err := hv.ReplayLog(core.Options{}, steps)
	if err != nil {
		t.Fatalf("ReplayLog must tolerate half-only step failures, got %v", err)
	}
	rareInExploration, err := hv.Exploration().CountWhere(dataset.Equals{Column: "marker", Value: "rare"})
	if err != nil {
		t.Fatal(err)
	}
	if replay.ValidationApplied > replay.ExplorationApplied {
		t.Errorf("validation applied %d > exploration applied %d", replay.ValidationApplied, replay.ExplorationApplied)
	}
	if rareInExploration == 0 {
		// The rare row went to the validation half: exploration stops at the
		// degenerate step 2.
		if replay.ExplorationApplied != 1 {
			t.Errorf("exploration applied %d steps, want 1", replay.ExplorationApplied)
		}
		if len(replay.Hypotheses) != 1 {
			t.Errorf("replay reports %d hypotheses, want 1", len(replay.Hypotheses))
		}
	} else {
		// The rare row is in the exploration half: step 2 runs there on one
		// row, and the validation half (zero rare rows) stops at it.
		if replay.ExplorationApplied < 2 {
			t.Errorf("exploration applied %d steps, want >= 2", replay.ExplorationApplied)
		}
		if replay.ValidationApplied != 1 {
			t.Errorf("validation applied %d steps, want 1", replay.ValidationApplied)
		}
		for _, h := range replay.Hypotheses[1:] {
			if h.Validated {
				t.Errorf("hypothesis %d past the validation prefix reported as validated", h.HypothesisID)
			}
		}
	}
	// The first hypothesis is comparable on both halves either way.
	if len(replay.Hypotheses) == 0 || !replay.Hypotheses[0].Validated {
		t.Fatalf("first hypothesis not validated: %+v", replay.Hypotheses)
	}
}
