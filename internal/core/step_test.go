package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"aware/internal/dataset"
	"aware/internal/stats"
)

// stepTestTable builds a small deterministic table with a planted association
// (group b skews red and has a higher x) plus a constant column for the
// zero-width-bin regression test.
func stepTestTable(t *testing.T) *dataset.Table {
	t.Helper()
	const n = 600
	rng := stats.NewRNG(42)
	group := make([]string, n)
	color := make([]string, n)
	x := make([]float64, n)
	constant := make([]float64, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			group[i] = "a"
			x[i] = rng.NormFloat64()
			if rng.Float64() < 0.5 {
				color[i] = "red"
			} else {
				color[i] = "blue"
			}
		} else {
			group[i] = "b"
			x[i] = 1.5 + rng.NormFloat64()
			if rng.Float64() < 0.8 {
				color[i] = "red"
			} else {
				color[i] = "blue"
			}
		}
		constant[i] = 7
	}
	tab, err := dataset.NewTable(
		dataset.NewCategoricalColumn("group", group),
		dataset.NewCategoricalColumn("color", color),
		dataset.NewFloatColumn("x", x),
		dataset.NewFloatColumn("constant", constant),
	)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func mustSession(t *testing.T, tab *dataset.Table) *Session {
	t.Helper()
	s, err := NewSession(tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// scriptedSteps is a fixed exploration exercising every step kind.
func scriptedSteps() []Step {
	return []Step{
		AddVisualization{Target: "color", Filter: dataset.Equals{Column: "group", Value: "b"}},
		AddVisualization{Target: "color", Filter: dataset.Not{Inner: dataset.Equals{Column: "group", Value: "b"}}},
		CompareVisualizations{A: 1, B: 2},
		AddVisualization{Target: "x", Filter: dataset.Equals{Column: "group", Value: "b"}},
		AddVisualization{Target: "x", Filter: dataset.Equals{Column: "group", Value: "a"}},
		CompareMeans{Attribute: "x", A: 3, B: 4},
		CompareDistributions{Attribute: "x", A: 3, B: 4},
		AddVisualization{Target: "color"}, // unfiltered: descriptive
		TestAgainstExpectation{Visualization: 5, Expected: map[string]float64{"red": 3, "blue": 1}},
		Star{Hypothesis: 1, Starred: true},
		AddVisualization{Target: "color", Filter: dataset.Equals{Column: "group", Value: "a"}},
		DeclareDescriptive{Visualization: 6},
		Star{Hypothesis: 1, Starred: false},
		Star{Hypothesis: 2, Starred: true},
	}
}

// TestApplyMatchesLegacyMethods drives one session through the legacy mutating
// methods and a second through the identical actions as Steps, and requires
// byte-identical Report JSON (the tentpole's equivalence guarantee).
func TestApplyMatchesLegacyMethods(t *testing.T) {
	tab := stepTestTable(t)

	legacy := mustSession(t, tab)
	groupB := dataset.Equals{Column: "group", Value: "b"}
	groupA := dataset.Equals{Column: "group", Value: "a"}
	if _, _, err := legacy.AddVisualization("color", groupB); err != nil {
		t.Fatal(err)
	}
	if _, _, err := legacy.AddVisualization("color", dataset.Not{Inner: groupB}); err != nil {
		t.Fatal(err)
	}
	if _, err := legacy.CompareVisualizations(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := legacy.AddVisualization("x", groupB); err != nil {
		t.Fatal(err)
	}
	if _, _, err := legacy.AddVisualization("x", groupA); err != nil {
		t.Fatal(err)
	}
	if _, err := legacy.CompareMeans("x", 3, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := legacy.CompareDistributions("x", 3, 4); err != nil {
		t.Fatal(err)
	}
	if _, _, err := legacy.AddVisualization("color", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := legacy.TestAgainstExpectation(5, map[string]float64{"red": 3, "blue": 1}); err != nil {
		t.Fatal(err)
	}
	if err := legacy.Star(1, true); err != nil {
		t.Fatal(err)
	}
	if _, _, err := legacy.AddVisualization("color", groupA); err != nil {
		t.Fatal(err)
	}
	if err := legacy.DeclareDescriptive(6); err != nil {
		t.Fatal(err)
	}
	if err := legacy.Star(1, false); err != nil {
		t.Fatal(err)
	}
	if err := legacy.Star(2, true); err != nil {
		t.Fatal(err)
	}

	stepped := mustSession(t, tab)
	for i, step := range scriptedSteps() {
		if _, err := stepped.Apply(step); err != nil {
			t.Fatalf("step %d (%s): %v", i+1, step.Kind(), err)
		}
	}

	now := time.Unix(1700000000, 0)
	var legacyJSON, steppedJSON strings.Builder
	if err := legacy.Report(now).WriteJSON(&legacyJSON); err != nil {
		t.Fatal(err)
	}
	if err := stepped.Report(now).WriteJSON(&steppedJSON); err != nil {
		t.Fatal(err)
	}
	if legacyJSON.String() != steppedJSON.String() {
		t.Errorf("legacy and stepped reports differ:\nlegacy:  %s\nstepped: %s", legacyJSON.String(), steppedJSON.String())
	}

	// Replay of the stepped session's own log must reproduce it byte for byte.
	replayed, err := Replay(tab, Options{}, StepsFromLog(stepped.Log()))
	if err != nil {
		t.Fatal(err)
	}
	var replayedJSON strings.Builder
	if err := replayed.Report(now).WriteJSON(&replayedJSON); err != nil {
		t.Fatal(err)
	}
	if replayedJSON.String() != steppedJSON.String() {
		t.Error("replayed report differs from the original")
	}

	// Both sessions journal identically: the legacy wrappers funnel through
	// Apply.
	legacyLog, steppedLog := legacy.Log(), stepped.Log()
	if len(legacyLog) != len(steppedLog) {
		t.Fatalf("journal lengths differ: %d vs %d", len(legacyLog), len(steppedLog))
	}
	for i := range legacyLog {
		a, err := MarshalStep(legacyLog[i].Step)
		if err != nil {
			t.Fatal(err)
		}
		b, err := MarshalStep(steppedLog[i].Step)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("journal entry %d differs: %s vs %s", i+1, a, b)
		}
		if legacyLog[i].Seq != i+1 || steppedLog[i].Seq != i+1 {
			t.Errorf("entry %d has wrong seq", i+1)
		}
	}
}

// fakeStep trips Apply's closed-set check: it satisfies Kind but is not one of
// the seven step kinds. (Outside the package this cannot even compile, since
// isStep is unexported.)
type fakeStep struct{}

func (fakeStep) Kind() string { return "fake" }
func (fakeStep) isStep()      {}

// TestApplyUnknownAndMalformedSteps is the table-driven satellite: unknown or
// zero steps return ErrUnknownStep, malformed-but-known steps return their
// domain errors, and every failure leaves the session (and its journal)
// untouched.
func TestApplyUnknownAndMalformedSteps(t *testing.T) {
	tab := stepTestTable(t)
	cases := []struct {
		name    string
		step    Step
		wantErr error
	}{
		{"nil step", nil, ErrUnknownStep},
		{"foreign step type", fakeStep{}, ErrUnknownStep},
		{"zero add_visualization", AddVisualization{}, dataset.ErrColumnNotFound},
		{"unknown target", AddVisualization{Target: "missing"}, dataset.ErrColumnNotFound},
		{"zero compare", CompareVisualizations{}, ErrUnknownVisualization},
		{"unknown viz ids", CompareVisualizations{A: 7, B: 8}, ErrUnknownVisualization},
		{"zero compare_means", CompareMeans{}, ErrUnknownVisualization},
		{"zero compare_distributions", CompareDistributions{}, ErrUnknownVisualization},
		{"zero expectation", TestAgainstExpectation{}, ErrUnknownVisualization},
		{"zero declare_descriptive", DeclareDescriptive{}, ErrUnknownVisualization},
		{"zero star", Star{}, ErrUnknownHypothesis},
		{"unknown hypothesis", Star{Hypothesis: 3, Starred: true}, ErrUnknownHypothesis},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := mustSession(t, tab)
			if _, _, err := s.AddVisualization("color", dataset.Equals{Column: "group", Value: "b"}); err != nil {
				t.Fatal(err)
			}
			wealthBefore := s.Wealth()
			logBefore := len(s.Log())
			_, err := s.Apply(tc.step)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("Apply(%v) = %v, want %v", tc.step, err, tc.wantErr)
			}
			if s.Wealth() != wealthBefore {
				t.Error("failed step changed the wealth")
			}
			if len(s.Log()) != logBefore {
				t.Error("failed step was journaled")
			}
			if len(s.Hypotheses()) != 1 || len(s.Visualizations()) != 1 {
				t.Error("failed step mutated session state")
			}
		})
	}
}

// TestApplyAtomicOnDegenerateFilter checks the stronger atomicity property:
// a step that fails midway (the filter selects nothing, so the χ² test
// errors) must not leave a half-created visualization behind, and a later
// retry must see unchanged IDs.
func TestApplyAtomicOnDegenerateFilter(t *testing.T) {
	s := mustSession(t, stepTestTable(t))
	empty := dataset.Equals{Column: "group", Value: "no-such-group"}
	if _, err := s.Apply(AddVisualization{Target: "color", Filter: empty}); err == nil {
		t.Fatal("expected the empty sub-population to fail")
	}
	if len(s.Visualizations()) != 0 || len(s.Hypotheses()) != 0 || len(s.Log()) != 0 {
		t.Fatalf("failed step left state behind: %d viz, %d hyp, %d log entries",
			len(s.Visualizations()), len(s.Hypotheses()), len(s.Log()))
	}
	viz, _, err := s.AddVisualization("color", dataset.Equals{Column: "group", Value: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if viz.ID != 1 {
		t.Errorf("first successful visualization got ID %d, want 1", viz.ID)
	}
}

// TestReferenceCountsConstantColumn is the zero-width-bin regression test: a
// constant numeric column used to divide by a zero bin width.
func TestReferenceCountsConstantColumn(t *testing.T) {
	tab := stepTestTable(t)
	sub, err := tab.View(dataset.Equals{Column: "group", Value: "b"})
	if err != nil {
		t.Fatal(err)
	}
	counts, err := referenceCounts(sub, "constant", nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != sub.NumRows() {
		t.Errorf("counts sum to %d, want %d", total, sub.NumRows())
	}
	// Everything lands in one bin: the values are identical.
	nonZero := 0
	for _, c := range counts {
		if c > 0 {
			nonZero++
		}
	}
	if nonZero != 1 {
		t.Errorf("constant column spread over %d bins, want 1 (counts %v)", nonZero, counts)
	}
}

// TestZeroWidthBinGuard exercises the width <= 0 fallback directly: a
// reference whose numeric range is one denormal wide underflows the
// per-bin width to exactly zero.
func TestZeroWidthBinGuard(t *testing.T) {
	const tiny = 5e-324 // smallest positive denormal: (hi-lo)/10 == 0
	vals := []float64{0, tiny, 0, tiny}
	tab, err := dataset.NewTable(
		dataset.NewFloatColumn("v", vals),
		dataset.NewCategoricalColumn("g", []string{"a", "a", "b", "b"}),
	)
	if err != nil {
		t.Fatal(err)
	}
	full, err := tab.View(nil)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := referenceCounts(full, "v", nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(vals) {
		t.Errorf("counts sum to %d, want %d (counts %v)", total, len(vals), counts)
	}
}
