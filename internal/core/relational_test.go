package core

import (
	"encoding/json"
	"errors"
	"os"
	"strings"
	"testing"

	"aware/internal/dataset"
)

// This file tests the relational steps (derive_column, join_dataset,
// group_by): their wire codec, their session semantics against direct
// dataset-layer evaluation, and a second golden replay log that exercises all
// three so codec or dispatch drift on the relational path shows up as a byte
// diff.

const (
	goldenRelationalLogPath    = "testdata/relational_log.json"
	goldenRelationalReportPath = "testdata/relational_report.json"
)

// stepTestCatalog resolves the one dimension table the relational tests join
// against: one row per group plus an unmatched extra.
type stepTestCatalog struct {
	tables map[string]*dataset.Table
	caches map[string]*dataset.SelectionCache
}

func newStepTestCatalog(t *testing.T) *stepTestCatalog {
	t.Helper()
	dim, err := dataset.NewTable(
		dataset.NewCategoricalColumn("name", []string{"a", "b", "c"}),
		dataset.NewFloatColumn("weight", []float64{1.5, 2.5, 9}),
		dataset.NewCategoricalColumn("label", []string{"control", "treatment", "unused"}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return &stepTestCatalog{
		tables: map[string]*dataset.Table{"groups": dim},
		caches: map[string]*dataset.SelectionCache{"groups": dataset.NewSelectionCache(dim)},
	}
}

func (c *stepTestCatalog) Dataset(name string) (*dataset.Table, *dataset.SelectionCache, error) {
	tab, ok := c.tables[name]
	if !ok {
		return nil, nil, errors.New("core test catalog: no dataset " + name)
	}
	return tab, c.caches[name], nil
}

// relationalSteps is the scripted exploration behind the relational golden
// log: derive a bucketed column, join the dimension, then raise group-by
// hypotheses over base, derived and joined columns.
func relationalSteps() []Step {
	return []Step{
		AddVisualization{Target: "color", Filter: dataset.Equals{Column: "group", Value: "b"}},
		DeriveColumn{Name: "x_bucket", Expr: dataset.Bucket{
			Arg:   dataset.Binary{Op: dataset.OpMul, L: dataset.Col{Name: "x"}, R: dataset.Const{Value: 10}},
			Width: 5,
		}},
		JoinDataset{Dataset: "groups", LeftKey: "group", RightKey: "name", Prefix: "g_"},
		GroupByHypothesis{RowAttr: "group", ColAttr: "color"},
		GroupByHypothesis{RowAttr: "g_label", ColAttr: "x_bucket",
			Filter: dataset.GreaterThan{Column: "g_weight", Threshold: 1}},
		Star{Hypothesis: 2, Starred: true},
	}
}

// TestStepJSONRoundTripRelationalKinds extends the codec round-trip coverage
// to the three relational step kinds.
func TestStepJSONRoundTripRelationalKinds(t *testing.T) {
	steps := []Step{
		DeriveColumn{Name: "wage_decade", Expr: dataset.Bucket{Arg: dataset.Col{Name: "wage"}, Width: 10}},
		DeriveColumn{Name: "revenue", Expr: dataset.Binary{
			Op: dataset.OpMul, L: dataset.Col{Name: "amount"}, R: dataset.Col{Name: "price"},
		}},
		JoinDataset{Dataset: "regions", LeftKey: "region", RightKey: "name", Prefix: "region_"},
		JoinDataset{Dataset: "regions", LeftKey: "region", RightKey: "name"}, // empty prefix
		GroupByHypothesis{RowAttr: "education", ColAttr: "gender"},
		GroupByHypothesis{RowAttr: "education", ColAttr: "gender",
			Filter: dataset.Range{Column: "age", Low: 30, High: 40}},
	}
	for _, step := range steps {
		t.Run(step.Kind(), func(t *testing.T) {
			decoded := roundTripStep(t, step)
			switch want := step.(type) {
			case JoinDataset:
				if decoded.(JoinDataset) != want {
					t.Errorf("JoinDataset round trip: %#v -> %#v", want, decoded)
				}
			case DeriveColumn:
				got := decoded.(DeriveColumn)
				if got.Name != want.Name || got.Expr.Describe() != want.Expr.Describe() {
					t.Errorf("DeriveColumn round trip: %#v -> %#v", want, got)
				}
			case GroupByHypothesis:
				got := decoded.(GroupByHypothesis)
				if got.RowAttr != want.RowAttr || got.ColAttr != want.ColAttr {
					t.Errorf("GroupByHypothesis round trip: %#v -> %#v", want, got)
				}
				if (got.Filter == nil) != (want.Filter == nil) {
					t.Errorf("filter presence changed: %#v -> %#v", want, got)
				}
			}
		})
	}
}

// TestUnmarshalRelationalStepStrictness rejects malformed relational steps.
func TestUnmarshalRelationalStepStrictness(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"derive without name", `{"op": "derive_column", "expression": {"expr": "col", "column": "x"}}`, "requires a name"},
		{"derive without expression", `{"op": "derive_column", "name": "y"}`, "requires an expression"},
		{"derive with bad expression", `{"op": "derive_column", "name": "y", "expression": {"expr": "mod"}}`, "unknown expression"},
		{"join without dataset", `{"op": "join_dataset", "left_key": "a", "right_key": "b"}`, "requires a dataset"},
		{"join without keys", `{"op": "join_dataset", "dataset": "d"}`, "left_key and right_key"},
		{"group_by without attributes", `{"op": "group_by", "row": "education"}`, "row and col"},
		{"group_by with bad predicate", `{"op": "group_by", "row": "a", "col": "b", "predicate": {"type": "nope"}}`, "unknown predicate type"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := UnmarshalStep([]byte(tc.in)); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("UnmarshalStep(%s) = %v, want error containing %q", tc.in, err, tc.want)
			}
		})
	}
}

// TestRelationalStepsMatchDirectEvaluation drives the three relational steps
// through Session.Apply and checks the session's table against the same
// operations evaluated directly at the dataset layer.
func TestRelationalStepsMatchDirectEvaluation(t *testing.T) {
	tab := stepTestTable(t)
	cat := newStepTestCatalog(t)
	sess, err := NewSession(tab, Options{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}

	expr := dataset.Bucket{
		Arg:   dataset.Binary{Op: dataset.OpMul, L: dataset.Col{Name: "x"}, R: dataset.Const{Value: 10}},
		Width: 5,
	}
	if err := sess.DeriveColumn("x_bucket", expr); err != nil {
		t.Fatal(err)
	}
	wantDerived, err := tab.Derive("x_bucket", expr)
	if err != nil {
		t.Fatal(err)
	}
	gotVals, err := sess.Data().Floats("x_bucket")
	if err != nil {
		t.Fatal(err)
	}
	wantVals, _ := wantDerived.Floats("x_bucket")
	for i := range gotVals {
		if gotVals[i] != wantVals[i] {
			t.Fatalf("derived row %d: %v, want %v", i, gotVals[i], wantVals[i])
		}
	}

	if err := sess.JoinDataset("groups", "group", "name", "g_"); err != nil {
		t.Fatal(err)
	}
	lv, err := dataset.NewView(wantDerived, dataset.FullSelection(wantDerived.NumRows()))
	if err != nil {
		t.Fatal(err)
	}
	dim, _, err := cat.Dataset("groups")
	if err != nil {
		t.Fatal(err)
	}
	rv, err := dataset.NewView(dim, dataset.FullSelection(dim.NumRows()))
	if err != nil {
		t.Fatal(err)
	}
	wantJoined, err := dataset.HashJoin(lv, rv, "group", "name", "g_")
	if err != nil {
		t.Fatal(err)
	}
	got := sess.Data()
	if got.NumRows() != wantJoined.NumRows() {
		t.Fatalf("joined session table has %d rows, want %d", got.NumRows(), wantJoined.NumRows())
	}
	gn, wn := got.ColumnNames(), wantJoined.ColumnNames()
	if len(gn) != len(wn) {
		t.Fatalf("joined session table has columns %v, want %v", gn, wn)
	}
	for i := range gn {
		if gn[i] != wn[i] {
			t.Fatalf("joined column %d is %q, want %q", i, gn[i], wn[i])
		}
	}
	gw, err := got.Floats("g_weight")
	if err != nil {
		t.Fatal(err)
	}
	ww, _ := wantJoined.Floats("g_weight")
	for i := range gw {
		if gw[i] != ww[i] {
			t.Fatalf("g_weight row %d: %v, want %v", i, gw[i], ww[i])
		}
	}

	// The group-by hypothesis over the joined table: support must equal the
	// filter's selectivity on the joined rows.
	filter := dataset.GreaterThan{Column: "g_weight", Threshold: 1}
	hyp, err := sess.GroupBy("group", "color", filter)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := wantJoined.Where(filter)
	if err != nil {
		t.Fatal(err)
	}
	if hyp.SupportSize != sel.Count() {
		t.Fatalf("group-by support %d, want the filter's %d matching rows", hyp.SupportSize, sel.Count())
	}
	if hyp.Source != SourceUser {
		t.Fatalf("group-by hypothesis source %v, want SourceUser", hyp.Source)
	}

	// Every applied relational step must be journaled and replayable.
	replayed, err := Replay(tab, Options{Catalog: cat}, StepsFromLog(sess.Log()))
	if err != nil {
		t.Fatal(err)
	}
	if rn := replayed.Data().NumRows(); rn != got.NumRows() {
		t.Fatalf("replayed table has %d rows, want %d", rn, got.NumRows())
	}
	if len(replayed.Hypotheses()) != len(sess.Hypotheses()) {
		t.Fatalf("replay recorded %d hypotheses, want %d", len(replayed.Hypotheses()), len(sess.Hypotheses()))
	}
}

// TestRelationalStepValidation pins the fail-before-mutate contract: invalid
// relational steps error without touching the table or the journal.
func TestRelationalStepValidation(t *testing.T) {
	tab := stepTestTable(t)
	sess := mustSession(t, tab) // no catalog
	cases := []struct {
		name string
		step Step
		want string
	}{
		{"join without catalog", JoinDataset{Dataset: "groups", LeftKey: "group", RightKey: "name"}, "catalog"},
		{"derive without name", DeriveColumn{Expr: dataset.Col{Name: "x"}}, "requires a column name"},
		{"derive without expression", DeriveColumn{Name: "y"}, "requires an expression"},
		{"derive duplicate column", DeriveColumn{Name: "x", Expr: dataset.Col{Name: "x"}}, "already exists"},
		{"derive categorical operand", DeriveColumn{Name: "y", Expr: dataset.Col{Name: "color"}}, "not numeric"},
		{"group-by missing attrs", GroupByHypothesis{RowAttr: "group"}, "row and column"},
		{"group-by unknown column", GroupByHypothesis{RowAttr: "group", ColAttr: "nope"}, "nope"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cols := sess.Data().NumColumns()
			journal := len(sess.Log())
			if _, err := sess.Apply(tc.step); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Apply = %v, want error containing %q", err, tc.want)
			}
			if sess.Data().NumColumns() != cols {
				t.Error("failed step changed the session table")
			}
			if len(sess.Log()) != journal {
				t.Error("failed step was journaled")
			}
		})
	}
}

// TestGoldenRelationalLogReplay is the relational golden-file gate: the
// committed log of relational steps must replay — through the JSON codec and
// a session catalog — to the exact committed report. Regenerate with:
// go test ./internal/core -run GoldenRelational -update
func TestGoldenRelationalLogReplay(t *testing.T) {
	tab := stepTestTable(t)
	cat := newStepTestCatalog(t)
	opts := Options{Catalog: cat}

	if *updateGolden {
		sess, err := NewSession(tab, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i, step := range relationalSteps() {
			if _, err := sess.Apply(step); err != nil {
				t.Fatalf("step %d: %v", i+1, err)
			}
		}
		logJSON, err := json.MarshalIndent(sess.Log(), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		var report strings.Builder
		if err := sess.Report(goldenTime).WriteJSON(&report); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenRelationalLogPath, append(logJSON, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenRelationalReportPath, []byte(report.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	rawLog, err := os.ReadFile(goldenRelationalLogPath)
	if err != nil {
		t.Fatalf("reading golden relational log (regenerate with -update): %v", err)
	}
	var log []AppliedStep
	if err := json.Unmarshal(rawLog, &log); err != nil {
		t.Fatalf("parsing golden relational log: %v", err)
	}
	if len(log) != len(relationalSteps()) {
		t.Fatalf("golden relational log has %d steps, want %d", len(log), len(relationalSteps()))
	}

	sess, err := Replay(tab, opts, StepsFromLog(log))
	if err != nil {
		t.Fatalf("replaying golden relational log: %v", err)
	}
	var got strings.Builder
	if err := sess.Report(goldenTime).WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(goldenRelationalReportPath)
	if err != nil {
		t.Fatalf("reading golden relational report (regenerate with -update): %v", err)
	}
	if got.String() != string(want) {
		t.Errorf("replayed report differs from golden file:\n--- got ---\n%s\n--- want ---\n%s", got.String(), want)
	}

	gotLog, err := json.MarshalIndent(sess.Log(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(append(gotLog, '\n')) != string(rawLog) {
		t.Error("replayed journal differs from the golden relational log")
	}
}
