package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"
)

// Report is a serializable snapshot of an exploration session: what the user
// would export at the end of a study to accompany the reported findings
// ("the hypotheses the user would like to include in a presentation",
// Section 3). It deliberately contains only derived quantities — p-values,
// invested levels, decisions — never the underlying data.
type Report struct {
	// GeneratedAt is the wall-clock time the report was produced (RFC 3339).
	GeneratedAt string `json:"generated_at"`
	// Alpha is the mFDR control level of the session.
	Alpha float64 `json:"alpha"`
	// Policy names the investing rule that was active.
	Policy string `json:"policy"`
	// InitialWealth and RemainingWealth summarize the α-wealth budget.
	InitialWealth   float64 `json:"initial_wealth"`
	RemainingWealth float64 `json:"remaining_wealth"`
	// Rows is the size of the explored dataset.
	Rows int `json:"rows"`
	// Hypotheses lists every tracked hypothesis in creation order.
	Hypotheses []ReportEntry `json:"hypotheses"`
	// Discoveries and StarredDiscoveries are headline counters over the active
	// hypotheses.
	Discoveries        int `json:"discoveries"`
	StarredDiscoveries int `json:"starred_discoveries"`
}

// ReportEntry is one hypothesis in a Report.
type ReportEntry struct {
	ID             int     `json:"id"`
	Null           string  `json:"null"`
	Alternative    string  `json:"alternative"`
	Source         string  `json:"source"`
	Status         string  `json:"status"`
	Method         string  `json:"method"`
	PValue         float64 `json:"p_value"`
	AlphaInvested  float64 `json:"alpha_invested"`
	Rejected       bool    `json:"rejected"`
	EffectSize     float64 `json:"effect_size"`
	EffectLabel    string  `json:"effect_label"`
	SupportSize    int     `json:"support_size"`
	PopulationSize int     `json:"population_size"`
	// DataMultiplier is the n_H1 annotation; it is encoded as -1 when the
	// required amount of data is unbounded (zero observed effect), because
	// JSON has no representation for +Inf.
	DataMultiplier float64 `json:"data_multiplier"`
	Starred        bool    `json:"starred"`
}

// Entry converts the hypothesis into its serializable report form. It is used
// by Session.Report and by the HTTP gauge endpoint of internal/server, which
// must render hypotheses without handing out internal pointers.
func (h *Hypothesis) Entry() ReportEntry {
	entry := ReportEntry{
		ID:             h.ID,
		Null:           h.Null,
		Alternative:    h.Alternative,
		Source:         h.Source.String(),
		Status:         h.Status.String(),
		Method:         h.Test.Method,
		PValue:         h.Test.PValue,
		AlphaInvested:  h.AlphaInvested,
		Rejected:       h.Rejected,
		EffectSize:     h.Test.EffectSize,
		EffectLabel:    string(h.EffectLabel()),
		SupportSize:    h.SupportSize,
		PopulationSize: h.PopulationSize,
		Starred:        h.Starred,
	}
	if math.IsInf(h.DataMultiplier, 1) || math.IsNaN(h.DataMultiplier) {
		entry.DataMultiplier = -1
	} else {
		entry.DataMultiplier = h.DataMultiplier
	}
	return entry
}

// Report builds the exportable snapshot of the session. now supplies the
// timestamp; pass time.Now in production code and a fixed value in tests.
func (s *Session) Report(now time.Time) Report {
	r := Report{
		GeneratedAt:     now.UTC().Format(time.RFC3339),
		Alpha:           s.alpha,
		Policy:          s.PolicyName(),
		InitialWealth:   s.investor.Config().InitialWealth(),
		RemainingWealth: s.investor.Wealth(),
		Rows:            s.data.NumRows(),
	}
	for _, h := range s.hypotheses {
		r.Hypotheses = append(r.Hypotheses, h.Entry())
		if h.Status == StatusActive && h.Rejected {
			r.Discoveries++
			if h.Starred {
				r.StarredDiscoveries++
			}
		}
	}
	return r
}

// WriteJSON serializes the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("core: encoding report: %w", err)
	}
	return nil
}

// ReadReport parses a report previously written with WriteJSON.
func ReadReport(r io.Reader) (Report, error) {
	var out Report
	dec := json.NewDecoder(r)
	if err := dec.Decode(&out); err != nil {
		return Report{}, fmt.Errorf("core: decoding report: %w", err)
	}
	return out, nil
}
