package core_test

import (
	"fmt"
	"sync"
	"testing"

	"aware/internal/census"
	"aware/internal/core"
	"aware/internal/dataset"
)

// TestConcurrentSessionsShareOnePool drives 8 independent sessions over one
// shared morsel-parallel pool and one shared SelectionCache, concurrently
// (run with -race). Each session applies its own mix of filtered
// visualizations and comparisons; afterwards, a sequential twin session
// (1-worker pool, private cache) replays the same steps and every p-value
// must match exactly — the parallel engine may never change a statistical
// result.
func TestConcurrentSessionsShareOnePool(t *testing.T) {
	tab, err := census.Generate(census.Config{Rows: 40000, Seed: 11, SignalStrength: 1})
	if err != nil {
		t.Fatal(err)
	}
	pool := dataset.NewPool(8)
	defer pool.Close()
	tab.SetPool(pool)
	shared := dataset.NewSelectionCache(tab)

	steps := func(k int) []core.Step {
		lo := float64(20 + 2*k)
		return []core.Step{
			core.AddVisualization{Target: census.ColGender, Filter: dataset.Range{Column: census.ColAge, Low: lo, High: lo + 12}},
			core.AddVisualization{Target: census.ColGender, Filter: dataset.Equals{Column: census.ColSalaryOver50K, Value: "true"}},
			core.AddVisualization{Target: census.ColAge, Filter: dataset.Equals{Column: census.ColEducation, Value: "Bachelor"}},
			core.CompareVisualizations{A: 1, B: 2},
			core.CompareMeans{Attribute: census.ColHoursPerWeek, A: 1, B: 2},
		}
	}

	const sessions = 8
	results := make([][]float64, sessions)
	var wg sync.WaitGroup
	for k := 0; k < sessions; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			sess, err := core.NewSession(tab, core.Options{Selections: shared})
			if err != nil {
				t.Error(err)
				return
			}
			for _, step := range steps(k) {
				if _, err := sess.Apply(step); err != nil {
					t.Errorf("session %d: %v", k, err)
					return
				}
			}
			var ps []float64
			for _, h := range sess.Hypotheses() {
				ps = append(ps, h.Test.PValue)
			}
			results[k] = ps
		}(k)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Sequential twin: same data regenerated, pinned to one worker, private
	// cache. Identical p-values prove the shared-parallel path changed nothing.
	seqTab, err := census.Generate(census.Config{Rows: 40000, Seed: 11, SignalStrength: 1})
	if err != nil {
		t.Fatal(err)
	}
	seqPool := dataset.NewPool(1)
	defer seqPool.Close()
	seqTab.SetPool(seqPool)
	for k := 0; k < sessions; k++ {
		twin, err := core.NewSession(seqTab, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, step := range steps(k) {
			if _, err := twin.Apply(step); err != nil {
				t.Fatalf("twin %d: %v", k, err)
			}
		}
		hyps := twin.Hypotheses()
		if len(hyps) != len(results[k]) {
			t.Fatalf("session %d: %d hypotheses parallel, %d sequential", k, len(results[k]), len(hyps))
		}
		for i, h := range hyps {
			if results[k][i] != h.Test.PValue {
				t.Errorf("session %d hypothesis %d: parallel p=%v, sequential p=%v",
					k, i+1, results[k][i], h.Test.PValue)
			}
		}
	}
}

// TestEvalParityAcrossPools pins the evaluation layer itself: the χ² tests
// behind rules 2 and 3 return bit-identical p-values and support sizes on a
// 1-worker pool and an 8-worker pool, for categorical and numeric targets.
func TestEvalParityAcrossPools(t *testing.T) {
	tab, err := census.Generate(census.Config{Rows: 50000, Seed: 5, SignalStrength: 1})
	if err != nil {
		t.Fatal(err)
	}
	filter := dataset.And{Terms: []dataset.Predicate{
		dataset.Equals{Column: census.ColSalaryOver50K, Value: "true"},
		dataset.Range{Column: census.ColAge, Low: 25, High: 55},
	}}
	other := dataset.Not{Inner: filter}

	type outcome struct {
		p1, p2   float64
		n1a, n1b int
		n2a, n2b int
	}
	eval := func(workers int) outcome {
		pool := dataset.NewPool(workers)
		defer pool.Close()
		tab.SetPool(pool)
		cache := dataset.NewSelectionCache(tab)
		t1, n1, err := core.FilterVsPopulationTestWith(cache, census.ColGender, filter)
		if err != nil {
			t.Fatal(err)
		}
		t2, n2a, n2b, err := core.ComparisonTestWith(cache, census.ColAge, filter, other)
		if err != nil {
			t.Fatal(err)
		}
		return outcome{p1: t1.PValue, p2: t2.PValue, n1a: n1, n2a: n2a, n2b: n2b}
	}

	seq := eval(1)
	par := eval(8)
	tab.SetPool(nil)
	if seq != par {
		t.Fatalf("evaluation differs across pools:\nsequential %+v\nparallel   %+v", seq, par)
	}
	if fmt.Sprintf("%x", seq.p1) != fmt.Sprintf("%x", par.p1) {
		t.Fatalf("p-value bits differ: %x vs %x", seq.p1, par.p1)
	}
}
