package core

import (
	"fmt"

	"aware/internal/dataset"
	"aware/internal/plan"
	"aware/internal/stats"
)

// This file implements the relational steps: deriving computed columns,
// joining a second registered dataset into the session, and group-by
// hypotheses over arbitrary attribute pairs. All three compile into a logical
// plan (internal/plan), so their filters push down into the cached, tuned
// Where kernels; like every other step they do all fallible work before
// mutating session state.

// DeriveColumn extends the session's table with a computed numeric column and
// continues the session over the extended table. Existing visualizations and
// hypotheses stay valid (the row set is unchanged); later steps can filter,
// group and test on the new column.
func (s *Session) DeriveColumn(name string, e dataset.Expr) error {
	_, err := s.Apply(DeriveColumn{Name: name, Expr: e})
	return err
}

// JoinDataset equi-joins the session's table with a catalog dataset and
// continues the session over the join result (left columns keep their names,
// right columns gain prefix). The session must have been opened with
// Options.Catalog.
func (s *Session) JoinDataset(name, leftKey, rightKey, prefix string) error {
	_, err := s.Apply(JoinDataset{Dataset: name, LeftKey: leftKey, RightKey: rightKey, Prefix: prefix})
	return err
}

// GroupBy tests the independence of two attributes over the filtered rows
// with a χ² test on their contingency table — the group-by generalization of
// the rule-2/rule-3 defaults to arbitrary column pairs.
func (s *Session) GroupBy(rowAttr, colAttr string, filter dataset.Predicate) (*Hypothesis, error) {
	res, err := s.Apply(GroupByHypothesis{RowAttr: rowAttr, ColAttr: colAttr, Filter: filter})
	if err != nil {
		return nil, err
	}
	return res.Hypothesis, nil
}

// scanNode is the plan leaf every relational step builds on: the session's
// current table read through its filter-bitmap cache, so scan-level filters
// are served by exact and subsumption cache hits.
func (s *Session) scanNode() plan.Node {
	return plan.TableScan{Table: s.data, Cache: s.sel}
}

// adoptTable moves the session onto a new table (a join or derive result)
// with a fresh private filter-bitmap cache bound to it. Only called after
// every fallible part of the step succeeded.
func (s *Session) adoptTable(t *dataset.Table) {
	s.data = t
	s.sel = dataset.NewSelectionCache(t)
}

func (s *Session) deriveColumn(name string, e dataset.Expr) error {
	if name == "" {
		return fmt.Errorf("core: derive step requires a column name")
	}
	if e == nil {
		return fmt.Errorf("core: derive step requires an expression")
	}
	res, err := plan.Run(plan.Derive{Input: s.scanNode(), Name: name, Expr: e}, s.catalog)
	if err != nil {
		return fmt.Errorf("core: deriving column %q: %w", name, err)
	}
	s.adoptTable(res.View.Table())
	return nil
}

func (s *Session) joinDataset(name, leftKey, rightKey, prefix string) error {
	if name == "" || leftKey == "" || rightKey == "" {
		return fmt.Errorf("core: join step requires a dataset and both key columns")
	}
	if s.catalog == nil {
		return fmt.Errorf("core: join steps require a session catalog (Options.Catalog)")
	}
	res, err := plan.Run(plan.Join{
		Left:        s.scanNode(),
		Right:       plan.Scan{Dataset: name},
		LeftKey:     leftKey,
		RightKey:    rightKey,
		RightPrefix: prefix,
	}, s.catalog)
	if err != nil {
		return fmt.Errorf("core: joining with dataset %q: %w", name, err)
	}
	s.adoptTable(res.View.Table())
	return nil
}

func (s *Session) groupByHypothesis(rowAttr, colAttr string, filter dataset.Predicate) (*Hypothesis, error) {
	if rowAttr == "" || colAttr == "" {
		return nil, fmt.Errorf("core: group-by step requires row and column attributes")
	}
	node := plan.GroupBy{
		Input:   plan.Filter{Input: s.scanNode(), Pred: filter},
		RowAttr: rowAttr,
		ColAttr: colAttr,
		Bins:    numericBins,
	}
	res, err := plan.Run(node, s.catalog)
	if err != nil {
		return nil, fmt.Errorf("core: group-by hypothesis %q × %q: %w", rowAttr, colAttr, err)
	}
	test, err := stats.ChiSquaredIndependence(res.Cross.Counts)
	if err != nil {
		return nil, fmt.Errorf("core: group-by hypothesis %q × %q: %w", rowAttr, colAttr, err)
	}
	support := 0
	for _, row := range res.Cross.Counts {
		for _, c := range row {
			support += c
		}
	}
	return s.record(test, Hypothesis{
		Null:        fmt.Sprintf("%s independent of %s | (%s)", rowAttr, colAttr, describeFilter(filter)),
		Alternative: fmt.Sprintf("%s associated with %s | (%s)", rowAttr, colAttr, describeFilter(filter)),
		Source:      SourceUser,
		SupportSize: support,
	})
}
