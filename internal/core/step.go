package core

import (
	"errors"
	"fmt"

	"aware/internal/dataset"
)

// ErrUnknownStep is returned by Session.Apply for a nil Step or a Step kind
// outside the closed set defined in this package.
var ErrUnknownStep = errors.New("core: unknown step")

// Step is one serializable exploration command: the closed algebra of session
// mutations. Every way a Session can change is expressible as a Step value, so
// an exploration is fully described by its ordered Step sequence — which can
// be logged (Session.Log), persisted (MarshalStep), replayed deterministically
// (Replay) and re-validated on a hold-out split (HoldoutValidator.ReplayLog).
// The set is sealed: only the ten types in this package implement it.
type Step interface {
	// Kind returns the step's stable wire name, e.g. "add_visualization".
	Kind() string
	isStep()
}

// AddVisualization creates a chart for Target restricted by Filter (nil for
// the whole dataset). A filtered chart triggers heuristic rule 2's default
// hypothesis; an unfiltered one is descriptive.
type AddVisualization struct {
	Target string
	Filter dataset.Predicate
}

// CompareVisualizations places visualizations A and B side by side (heuristic
// rule 3): the default hypothesis becomes "the two distributions do not
// differ", superseding the rule-2 hypotheses attached to either chart.
type CompareVisualizations struct {
	A, B int
}

// CompareMeans overrides the default comparison of visualizations A and B
// with a Welch t-test on the means of the numeric Attribute.
type CompareMeans struct {
	Attribute string
	A, B      int
}

// CompareDistributions overrides the default comparison of visualizations A
// and B with a two-sample Kolmogorov–Smirnov test on the numeric Attribute.
type CompareDistributions struct {
	Attribute string
	A, B      int
}

// TestAgainstExpectation attaches a user-defined hypothesis to the identified
// visualization: the observed distribution is tested against the Expected
// relative weights per category (rule 1's escape hatch).
type TestAgainstExpectation struct {
	Visualization int
	Expected      map[string]float64
}

// DeclareDescriptive marks the hypothesis attached to the identified
// visualization as deleted: the chart was purely descriptive after all.
type DeclareDescriptive struct {
	Visualization int
}

// Star marks (or unmarks) a hypothesis as an important discovery.
type Star struct {
	Hypothesis int
	Starred    bool
}

// DeriveColumn extends the session's table with a computed numeric column
// (arithmetic and bucketing over existing numeric columns, see dataset.Expr).
// The row set is unchanged, so existing visualizations and hypotheses stay
// valid; subsequent steps can filter, group and test on the derived column.
type DeriveColumn struct {
	Name string
	Expr dataset.Expr
}

// JoinDataset hash equi-joins the session's table (left side) with a dataset
// registered in the session's catalog (right side) on LeftKey = RightKey. The
// session continues over the join result: left columns keep their names,
// right columns are renamed Prefix+name. Requires Options.Catalog.
type JoinDataset struct {
	Dataset  string
	LeftKey  string
	RightKey string
	Prefix   string
}

// GroupByHypothesis tests the independence of two attributes over the rows
// matching Filter (nil for the whole table) with a χ² test on their
// contingency table, routed through the α-investing procedure like every
// other hypothesis. Numeric attributes are cut into equal-width bins.
type GroupByHypothesis struct {
	RowAttr string
	ColAttr string
	Filter  dataset.Predicate
}

// Kind implements Step.
func (AddVisualization) Kind() string { return "add_visualization" }

// Kind implements Step.
func (CompareVisualizations) Kind() string { return "compare_visualizations" }

// Kind implements Step.
func (CompareMeans) Kind() string { return "compare_means" }

// Kind implements Step.
func (CompareDistributions) Kind() string { return "compare_distributions" }

// Kind implements Step.
func (TestAgainstExpectation) Kind() string { return "test_against_expectation" }

// Kind implements Step.
func (DeclareDescriptive) Kind() string { return "declare_descriptive" }

// Kind implements Step.
func (Star) Kind() string { return "star" }

// Kind implements Step.
func (DeriveColumn) Kind() string { return "derive_column" }

// Kind implements Step.
func (JoinDataset) Kind() string { return "join_dataset" }

// Kind implements Step.
func (GroupByHypothesis) Kind() string { return "group_by" }

func (AddVisualization) isStep()       {}
func (CompareVisualizations) isStep()  {}
func (CompareMeans) isStep()           {}
func (CompareDistributions) isStep()   {}
func (TestAgainstExpectation) isStep() {}
func (DeclareDescriptive) isStep()     {}
func (Star) isStep()                   {}
func (DeriveColumn) isStep()           {}
func (JoinDataset) isStep()            {}
func (GroupByHypothesis) isStep()      {}

// StepResult reports what applying a Step produced. The pointers reference
// live session state, so the single-threaded contract of Session applies.
type StepResult struct {
	// Seq is the 1-based position the step took in the session journal.
	Seq int
	// Visualization is the chart created by an AddVisualization step
	// (nil for every other kind).
	Visualization *Visualization
	// Hypothesis is the hypothesis the step created (nil for descriptive
	// visualizations, DeclareDescriptive and Star).
	Hypothesis *Hypothesis
}

// AppliedStep is one entry of the session journal: the command plus the IDs it
// produced. Unlike StepResult it holds no pointers, so a copied journal can be
// serialized or replayed after the session lock is released.
type AppliedStep struct {
	// Seq is the 1-based position in the journal.
	Seq int
	// Step is the command that was applied.
	Step Step
	// VisualizationID identifies the chart an AddVisualization step created
	// (0 for other kinds).
	VisualizationID int
	// HypothesisID identifies the hypothesis the step created (0 if none).
	HypothesisID int
}

// Apply dispatches a Step to the session: the single entry point every
// mutation goes through. Steps are atomic — on error the session is unchanged
// and nothing is journaled — and successful steps are appended to the journal
// returned by Log. Unknown or nil steps return ErrUnknownStep.
func (s *Session) Apply(step Step) (StepResult, error) {
	res, err := s.dispatch(step)
	if err != nil {
		return StepResult{}, err
	}
	entry := AppliedStep{Seq: len(s.journal) + 1, Step: step}
	if res.Visualization != nil {
		entry.VisualizationID = res.Visualization.ID
	}
	if res.Hypothesis != nil {
		entry.HypothesisID = res.Hypothesis.ID
	}
	s.journal = append(s.journal, entry)
	res.Seq = entry.Seq
	return res, nil
}

// dispatch routes the step to its implementation without journaling.
func (s *Session) dispatch(step Step) (StepResult, error) {
	switch st := step.(type) {
	case AddVisualization:
		viz, hyp, err := s.addVisualization(st.Target, st.Filter)
		if err != nil {
			return StepResult{}, err
		}
		return StepResult{Visualization: viz, Hypothesis: hyp}, nil
	case CompareVisualizations:
		hyp, err := s.compareVisualizations(st.A, st.B)
		if err != nil {
			return StepResult{}, err
		}
		return StepResult{Hypothesis: hyp}, nil
	case CompareMeans:
		hyp, err := s.compareMeans(st.Attribute, st.A, st.B)
		if err != nil {
			return StepResult{}, err
		}
		return StepResult{Hypothesis: hyp}, nil
	case CompareDistributions:
		hyp, err := s.compareDistributions(st.Attribute, st.A, st.B)
		if err != nil {
			return StepResult{}, err
		}
		return StepResult{Hypothesis: hyp}, nil
	case TestAgainstExpectation:
		hyp, err := s.testAgainstExpectation(st.Visualization, st.Expected)
		if err != nil {
			return StepResult{}, err
		}
		return StepResult{Hypothesis: hyp}, nil
	case DeclareDescriptive:
		return StepResult{}, s.declareDescriptive(st.Visualization)
	case Star:
		return StepResult{}, s.star(st.Hypothesis, st.Starred)
	case DeriveColumn:
		return StepResult{}, s.deriveColumn(st.Name, st.Expr)
	case JoinDataset:
		return StepResult{}, s.joinDataset(st.Dataset, st.LeftKey, st.RightKey, st.Prefix)
	case GroupByHypothesis:
		hyp, err := s.groupByHypothesis(st.RowAttr, st.ColAttr, st.Filter)
		if err != nil {
			return StepResult{}, err
		}
		return StepResult{Hypothesis: hyp}, nil
	case nil:
		return StepResult{}, fmt.Errorf("%w: nil", ErrUnknownStep)
	default:
		return StepResult{}, fmt.Errorf("%w: %T", ErrUnknownStep, step)
	}
}

// Log returns the session's append-only journal: every successfully applied
// step in order, whether it arrived through Apply or a legacy method.
func (s *Session) Log() []AppliedStep {
	out := make([]AppliedStep, len(s.journal))
	copy(out, s.journal)
	return out
}

// StepsFromLog strips the journal down to the bare command sequence, the form
// Replay and HoldoutValidator.ReplayLog consume.
func StepsFromLog(log []AppliedStep) []Step {
	out := make([]Step, len(log))
	for i, e := range log {
		out[i] = e.Step
	}
	return out
}

// Replay reconstructs a session deterministically: it opens a fresh session
// over table with opts and applies the steps in order. Same table, options
// and steps always yield an identical session (and byte-identical reports up
// to the timestamp). On failure the error names the offending step.
func Replay(table *dataset.Table, opts Options, steps []Step) (*Session, error) {
	sess, err := NewSession(table, opts)
	if err != nil {
		return nil, err
	}
	for i, step := range steps {
		if _, err := sess.Apply(step); err != nil {
			return nil, fmt.Errorf("core: replaying step %d/%d: %w", i+1, len(steps), err)
		}
	}
	return sess, nil
}
