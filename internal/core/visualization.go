package core

import (
	"fmt"

	"aware/internal/dataset"
)

// Visualization models one chart on the AWARE canvas: a target attribute
// rendered as a histogram, optionally restricted by a chain of filter
// conditions inherited from the charts it is linked to (Figure 1).
type Visualization struct {
	// ID is the 1-based identifier within the session.
	ID int
	// Target is the attribute being visualized.
	Target string
	// Filter is the accumulated filter chain; nil means the whole dataset.
	Filter dataset.Predicate
	// HypothesisID is the hypothesis currently attached to this visualization
	// (0 when the visualization is purely descriptive).
	HypothesisID int
}

// Filtered reports whether the visualization carries any filter condition.
func (v *Visualization) Filtered() bool { return v.Filter != nil }

// Describe renders the visualization as "target | filter" (or just the target
// for unfiltered charts), the notation used in the paper's risk gauge.
func (v *Visualization) Describe() string {
	if v.Filter == nil {
		return v.Target
	}
	return fmt.Sprintf("%s | %s", v.Target, v.Filter.Describe())
}

// Histogram returns the per-category counts of the visualization over the
// given table, i.e. exactly the bars the chart would render. The filter is
// evaluated as a bitmap selection; no sub-table is materialized.
func (v *Visualization) Histogram(t *dataset.Table) ([]dataset.GroupCount, error) {
	view, err := t.View(v.Filter)
	if err != nil {
		return nil, err
	}
	return view.GroupBy(v.Target)
}
