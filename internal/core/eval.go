package core

import (
	"aware/internal/dataset"
	"aware/internal/obs"
	"aware/internal/stats"
)

// This file holds the pure test-evaluation layer under the Session: the χ²
// comparisons behind heuristic rules 2 and 3, computed against a fixed
// reference table but independent of any session state or α-investing. The
// Session routes its default hypotheses through these functions, and
// internal/census evaluates the user-study workflows through the very same
// ones, so the interactive service and the paper-figure harness share one
// code path.
//
// Evaluation is vectorized end to end: filters compile to bitmap Selections
// through a dataset.SelectionCache (so repeated filters — within a session,
// across a replayed log, or across every session of a served dataset — reuse
// one bitmap), and all counting runs over zero-copy Views instead of
// materialized sub-tables.

// numericBins is the number of equal-width bins used when a visualization
// targets a numeric attribute (the age histograms of Figure 1 D–F). Bin edges
// are always derived from the full dataset so that filtered sub-populations
// are compared on the same axes the user sees.
const numericBins = 10

// referenceCounts returns the per-category (or per-bin, for numeric targets)
// counts of target within the view, using the view's full table as the
// reference that fixes the category set / bin edges. A non-nil span records
// the counting kernel under the caller's trace.
func referenceCounts(sub dataset.View, target string, span *obs.Span) ([]int, error) {
	ref := sub.Table()
	col, err := ref.Column(target)
	if err != nil {
		return nil, err
	}
	if col.Type == dataset.Categorical || col.Type == dataset.Bool {
		cats, err := ref.Categories(target)
		if err != nil {
			return nil, err
		}
		return sub.CountsForSpan(target, cats, span)
	}
	// Numeric target: bin on edges computed over the reference table. The
	// per-row bin assignment is memoized on the table, so only the first
	// hypothesis over this target pays the binning arithmetic.
	return sub.BinCountsSpan(target, numericBins, span)
}

// FilterVsPopulationTest runs heuristic rule 2's default test: the
// distribution of target under filter against its distribution over the whole
// reference table, as a χ² goodness-of-fit test. It returns the test result
// and the filtered support size.
func FilterVsPopulationTest(ref *dataset.Table, target string, filter dataset.Predicate) (stats.TestResult, int, error) {
	return FilterVsPopulationTestWith(dataset.NewSelectionCache(ref), target, filter)
}

// FilterVsPopulationTestWith is FilterVsPopulationTest resolving filters
// through the given selection cache (the session's own, or a server-wide
// per-dataset cache shared across sessions).
func FilterVsPopulationTestWith(sel *dataset.SelectionCache, target string, filter dataset.Predicate) (stats.TestResult, int, error) {
	return filterVsPopulationTest(sel, target, filter, nil)
}

// filterVsPopulationTest is the span-aware body behind
// FilterVsPopulationTestWith: a traced session passes its step span so the
// filter compilation and both counting passes appear as kernel spans.
func filterVsPopulationTest(sel *dataset.SelectionCache, target string, filter dataset.Predicate, span *obs.Span) (stats.TestResult, int, error) {
	sub, err := sel.ViewSpan(filter, span)
	if err != nil {
		return stats.TestResult{}, 0, err
	}
	observed, err := referenceCounts(sub, target, span)
	if err != nil {
		return stats.TestResult{}, 0, err
	}
	pop, err := sel.ViewSpan(nil, span)
	if err != nil {
		return stats.TestResult{}, 0, err
	}
	popCounts, err := referenceCounts(pop, target, span)
	if err != nil {
		return stats.TestResult{}, 0, err
	}
	expected := make([]float64, len(popCounts))
	for i, c := range popCounts {
		expected[i] = float64(c)
	}
	test, err := stats.ChiSquaredGoodnessOfFit(observed, expected)
	if err != nil {
		return stats.TestResult{}, 0, err
	}
	return test, sub.NumRows(), nil
}

// ComparisonTest runs heuristic rule 3's default test: a χ² independence test
// between the distributions of target under filterA and under filterB, with
// the category set / bin edges fixed by the reference table. It returns the
// test result and the two support sizes.
func ComparisonTest(ref *dataset.Table, target string, filterA, filterB dataset.Predicate) (stats.TestResult, int, int, error) {
	return ComparisonTestWith(dataset.NewSelectionCache(ref), target, filterA, filterB)
}

// ComparisonTestWith is ComparisonTest resolving filters through the given
// selection cache.
func ComparisonTestWith(sel *dataset.SelectionCache, target string, filterA, filterB dataset.Predicate) (stats.TestResult, int, int, error) {
	return comparisonTest(sel, target, filterA, filterB, nil)
}

// comparisonTest is the span-aware body behind ComparisonTestWith.
func comparisonTest(sel *dataset.SelectionCache, target string, filterA, filterB dataset.Predicate, span *obs.Span) (stats.TestResult, int, int, error) {
	subA, err := sel.ViewSpan(filterA, span)
	if err != nil {
		return stats.TestResult{}, 0, 0, err
	}
	subB, err := sel.ViewSpan(filterB, span)
	if err != nil {
		return stats.TestResult{}, 0, 0, err
	}
	countsA, err := referenceCounts(subA, target, span)
	if err != nil {
		return stats.TestResult{}, 0, 0, err
	}
	countsB, err := referenceCounts(subB, target, span)
	if err != nil {
		return stats.TestResult{}, 0, 0, err
	}
	test, err := stats.ChiSquaredIndependence([][]int{countsA, countsB})
	if err != nil {
		return stats.TestResult{}, 0, 0, err
	}
	return test, subA.NumRows(), subB.NumRows(), nil
}

// describeFilter renders a possibly-nil filter.
func describeFilter(p dataset.Predicate) string {
	if p == nil {
		return "all"
	}
	return p.Describe()
}
