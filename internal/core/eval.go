package core

import (
	"aware/internal/dataset"
	"aware/internal/stats"
)

// This file holds the pure test-evaluation layer under the Session: the χ²
// comparisons behind heuristic rules 2 and 3, computed against a fixed
// reference table but independent of any session state or α-investing. The
// Session routes its default hypotheses through these functions, and
// internal/census evaluates the user-study workflows through the very same
// ones, so the interactive service and the paper-figure harness share one
// code path.

// numericBins is the number of equal-width bins used when a visualization
// targets a numeric attribute (the age histograms of Figure 1 D–F). Bin edges
// are always derived from the full dataset so that filtered sub-populations
// are compared on the same axes the user sees.
const numericBins = 10

// referenceCounts returns the per-category (or per-bin, for numeric targets)
// counts of target within sub, using the reference table ref to fix the
// category set / bin edges.
func referenceCounts(ref, sub *dataset.Table, target string) ([]int, error) {
	col, err := ref.Column(target)
	if err != nil {
		return nil, err
	}
	if col.Type == dataset.Categorical || col.Type == dataset.Bool {
		cats, err := ref.Categories(target)
		if err != nil {
			return nil, err
		}
		return sub.CountsFor(target, cats)
	}
	// Numeric target: bin on edges computed over the reference table.
	all, err := ref.Floats(target)
	if err != nil {
		return nil, err
	}
	hist, err := stats.NewHistogram(all, numericBins)
	if err != nil {
		return nil, err
	}
	vals, err := sub.Floats(target)
	if err != nil {
		return nil, err
	}
	counts := make([]int, len(hist.Counts))
	lo := hist.Edges[0]
	hi := hist.Edges[len(hist.Edges)-1]
	width := (hi - lo) / float64(len(counts))
	if width <= 0 {
		// A constant (or denormal-range) column collapses every bin edge onto
		// one point; dividing by the zero width would push int(NaN) through
		// the index below. Fall back to a single bin holding everything.
		counts[0] = len(vals)
		return counts, nil
	}
	for _, v := range vals {
		idx := int((v - lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= len(counts) {
			idx = len(counts) - 1
		}
		counts[idx]++
	}
	return counts, nil
}

// FilterVsPopulationTest runs heuristic rule 2's default test: the
// distribution of target under filter against its distribution over the whole
// reference table, as a χ² goodness-of-fit test. It returns the test result
// and the filtered support size.
func FilterVsPopulationTest(ref *dataset.Table, target string, filter dataset.Predicate) (stats.TestResult, int, error) {
	sub, err := ref.Filter(filter)
	if err != nil {
		return stats.TestResult{}, 0, err
	}
	observed, err := referenceCounts(ref, sub, target)
	if err != nil {
		return stats.TestResult{}, 0, err
	}
	popCounts, err := referenceCounts(ref, ref, target)
	if err != nil {
		return stats.TestResult{}, 0, err
	}
	expected := make([]float64, len(popCounts))
	for i, c := range popCounts {
		expected[i] = float64(c)
	}
	test, err := stats.ChiSquaredGoodnessOfFit(observed, expected)
	if err != nil {
		return stats.TestResult{}, 0, err
	}
	return test, sub.NumRows(), nil
}

// ComparisonTest runs heuristic rule 3's default test: a χ² independence test
// between the distributions of target under filterA and under filterB, with
// the category set / bin edges fixed by the reference table. It returns the
// test result and the two support sizes.
func ComparisonTest(ref *dataset.Table, target string, filterA, filterB dataset.Predicate) (stats.TestResult, int, int, error) {
	subA, err := ref.Filter(filterA)
	if err != nil {
		return stats.TestResult{}, 0, 0, err
	}
	subB, err := ref.Filter(filterB)
	if err != nil {
		return stats.TestResult{}, 0, 0, err
	}
	countsA, err := referenceCounts(ref, subA, target)
	if err != nil {
		return stats.TestResult{}, 0, 0, err
	}
	countsB, err := referenceCounts(ref, subB, target)
	if err != nil {
		return stats.TestResult{}, 0, 0, err
	}
	test, err := stats.ChiSquaredIndependence([][]int{countsA, countsB})
	if err != nil {
		return stats.TestResult{}, 0, 0, err
	}
	return test, subA.NumRows(), subB.NumRows(), nil
}

// describeFilter renders a possibly-nil filter.
func describeFilter(p dataset.Predicate) string {
	if p == nil {
		return "all"
	}
	return p.Describe()
}
