package core_test

import (
	"sync"
	"testing"

	"aware/internal/census"
	"aware/internal/core"
	"aware/internal/dataset"
)

// TestConcurrentSessionsShareOneArena is the arena companion of
// TestConcurrentSessionsShareOnePool: 8 concurrent sessions over one table
// that shares a pool, a SelectionCache AND a Selection word arena — the
// exact configuration awared runs per registered dataset — followed by a
// no-arena twin replaying the same steps. Run with -race: bitmap words are
// recycled across sessions during the run, so any release of a selection a
// session still reads would surface here. Every p-value must match the
// arena-free twin exactly — recycling may never change a statistical
// result.
func TestConcurrentSessionsShareOneArena(t *testing.T) {
	tab, err := census.Generate(census.Config{Rows: 40000, Seed: 13, SignalStrength: 1})
	if err != nil {
		t.Fatal(err)
	}
	pool := dataset.NewPool(8)
	defer pool.Close()
	arena := dataset.NewWordArena(tab.NumRows())
	shared := dataset.NewSelectionCache(tab)

	steps := func(k int) []core.Step {
		lo := float64(18 + 3*k)
		return []core.Step{
			core.AddVisualization{Target: census.ColGender, Filter: dataset.Range{Column: census.ColAge, Low: lo, High: lo + 15}},
			core.AddVisualization{Target: census.ColGender, Filter: dataset.And{Terms: []dataset.Predicate{
				dataset.Equals{Column: census.ColSalaryOver50K, Value: "true"},
				dataset.GreaterThan{Column: census.ColHoursPerWeek, Threshold: float64(30 + k)},
			}}},
			core.AddVisualization{Target: census.ColAge, Filter: dataset.Equals{Column: census.ColEducation, Value: "Bachelor"}},
			core.CompareVisualizations{A: 1, B: 2},
			core.CompareMeans{Attribute: census.ColHoursPerWeek, A: 1, B: 2},
		}
	}

	const sessions = 8
	results := make([][]float64, sessions)
	var wg sync.WaitGroup
	for k := 0; k < sessions; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			sess, err := core.NewSession(tab, core.Options{Selections: shared, Pool: pool, Arena: arena})
			if err != nil {
				t.Error(err)
				return
			}
			for _, step := range steps(k) {
				if _, err := sess.Apply(step); err != nil {
					t.Errorf("session %d: %v", k, err)
					return
				}
			}
			var ps []float64
			for _, h := range sess.Hypotheses() {
				ps = append(ps, h.Test.PValue)
			}
			results[k] = ps
		}(k)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if st := arena.Stats(); st.ReturnedSelections == 0 {
		t.Errorf("arena never saw a release during the shared run: %+v", st)
	}

	// Arena-free sequential twin on regenerated data: identical p-values
	// prove word recycling changed nothing.
	seqTab, err := census.Generate(census.Config{Rows: 40000, Seed: 13, SignalStrength: 1})
	if err != nil {
		t.Fatal(err)
	}
	seqPool := dataset.NewPool(1)
	defer seqPool.Close()
	seqTab.SetPool(seqPool)
	for k := 0; k < sessions; k++ {
		twin, err := core.NewSession(seqTab, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, step := range steps(k) {
			if _, err := twin.Apply(step); err != nil {
				t.Fatalf("twin %d: %v", k, err)
			}
		}
		hyps := twin.Hypotheses()
		if len(hyps) != len(results[k]) {
			t.Fatalf("session %d: %d hypotheses with arena, %d without", k, len(results[k]), len(hyps))
		}
		for i, h := range hyps {
			if results[k][i] != h.Test.PValue {
				t.Errorf("session %d hypothesis %d: arena p=%v, no-arena p=%v",
					k, i+1, results[k][i], h.Test.PValue)
			}
		}
	}
}
