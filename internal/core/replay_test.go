package core

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden replay files")

const (
	goldenLogPath    = "testdata/replay_log.json"
	goldenReportPath = "testdata/replay_report.json"
)

// goldenTime pins the report timestamp so the golden bytes are stable.
var goldenTime = time.Unix(1700000000, 0)

// TestGoldenLogReplaysToGoldenReport is the golden-file satellite: a recorded
// exploration log, committed as JSON, must replay to the exact committed
// Report — any change to the step codec, the dispatch layer, the statistics
// or the α-investing arithmetic that altered replay semantics shows up as a
// byte diff here. Regenerate with: go test ./internal/core -run Golden -update
func TestGoldenLogReplaysToGoldenReport(t *testing.T) {
	tab := stepTestTable(t)

	if *updateGolden {
		sess := mustSession(t, tab)
		for i, step := range scriptedSteps() {
			if _, err := sess.Apply(step); err != nil {
				t.Fatalf("step %d: %v", i+1, err)
			}
		}
		logJSON, err := json.MarshalIndent(sess.Log(), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		var report strings.Builder
		if err := sess.Report(goldenTime).WriteJSON(&report); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenLogPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenLogPath, append(logJSON, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenReportPath, []byte(report.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	rawLog, err := os.ReadFile(goldenLogPath)
	if err != nil {
		t.Fatalf("reading golden log (regenerate with -update): %v", err)
	}
	var log []AppliedStep
	if err := json.Unmarshal(rawLog, &log); err != nil {
		t.Fatalf("parsing golden log: %v", err)
	}
	if len(log) == 0 {
		t.Fatal("golden log is empty")
	}

	sess, err := Replay(tab, Options{}, StepsFromLog(log))
	if err != nil {
		t.Fatalf("replaying golden log: %v", err)
	}
	var got strings.Builder
	if err := sess.Report(goldenTime).WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(goldenReportPath)
	if err != nil {
		t.Fatalf("reading golden report (regenerate with -update): %v", err)
	}
	if got.String() != string(want) {
		t.Errorf("replayed report differs from golden file:\n--- got ---\n%s\n--- want ---\n%s", got.String(), want)
	}

	// The replayed journal must also round-trip to the same bytes as the
	// golden log (IDs included).
	gotLog, err := json.MarshalIndent(sess.Log(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(append(gotLog, '\n')) != string(rawLog) {
		t.Error("replayed journal differs from the golden log")
	}
}
