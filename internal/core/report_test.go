package core_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"aware/internal/census"
	"aware/internal/core"
	"aware/internal/dataset"
)

func TestSessionReportRoundTrip(t *testing.T) {
	s := newSession(t, testCensus(t))
	rich := dataset.Equals{Column: census.ColSalaryOver50K, Value: "true"}
	_, hyp, err := s.AddVisualization(census.ColGender, rich)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Star(hyp.ID, true); err != nil {
		t.Fatal(err)
	}
	_, m2, err := s.AddVisualization(census.ColMaritalStatus, dataset.Equals{Column: census.ColEducation, Value: "PhD"})
	if err != nil {
		t.Fatal(err)
	}
	_ = m2

	now := time.Date(2026, 6, 16, 12, 0, 0, 0, time.UTC)
	report := s.Report(now)
	if report.GeneratedAt != "2026-06-16T12:00:00Z" {
		t.Errorf("timestamp %q", report.GeneratedAt)
	}
	if report.Alpha != 0.05 || report.Policy == "" {
		t.Errorf("report header %+v", report)
	}
	if len(report.Hypotheses) != 2 {
		t.Fatalf("hypotheses in report: %d", len(report.Hypotheses))
	}
	if report.Discoveries < 1 || report.StarredDiscoveries != 1 {
		t.Errorf("counters %+v", report)
	}
	first := report.Hypotheses[0]
	if !first.Rejected || !first.Starred || first.PValue > 0.05 {
		t.Errorf("first entry %+v", first)
	}
	if first.Source != "rule-2 (filter vs population)" || first.Status != "active" {
		t.Errorf("source/status %q %q", first.Source, first.Status)
	}

	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"alpha\": 0.05") {
		t.Error("JSON missing alpha")
	}
	back, err := core.ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Discoveries != report.Discoveries || len(back.Hypotheses) != len(report.Hypotheses) {
		t.Error("round trip mismatch")
	}
	if back.Hypotheses[0].Null != report.Hypotheses[0].Null {
		t.Error("entry text mismatch after round trip")
	}
	if _, err := core.ReadReport(strings.NewReader("{not json")); err == nil {
		t.Error("invalid JSON should error")
	}
}

func TestReportEncodesInfiniteMultiplierAsSentinel(t *testing.T) {
	// A hypothesis with zero observed effect has an unbounded n_H1; the JSON
	// export must encode it as -1 rather than failing on +Inf.
	s := newSession(t, testCensus(t))
	rich := dataset.Equals{Column: census.ColSalaryOver50K, Value: "true"}
	_, hyp, err := s.AddVisualization(census.ColGender, rich)
	if err != nil {
		t.Fatal(err)
	}
	hyp.DataMultiplier = inf()
	report := s.Report(time.Unix(0, 0))
	if report.Hypotheses[0].DataMultiplier != -1 {
		t.Errorf("multiplier sentinel = %v", report.Hypotheses[0].DataMultiplier)
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON with sentinel: %v", err)
	}
}

func inf() float64 { return 1 / zero() }

func zero() float64 { return 0 }
