package core

import (
	"aware/internal/obs"
)

// ApplyTraced is Apply with a step-depth span recorded under parent: the
// step's kind, its outcome on the α-investing ledger (p-value, α invested,
// rejected, remaining wealth) and — through the Session.trace field it sets
// for the duration of the dispatch — kernel spans for every filter
// compilation and counting pass the step executed.
//
// A nil parent is exactly Apply: no span, no annotations, no allocations.
// ApplyTraced shares Session's single-threaded contract; the server applies
// steps under the per-session lock, so the trace field never sees two
// writers.
func (s *Session) ApplyTraced(parent *obs.Span, step Step) (StepResult, error) {
	if parent == nil || step == nil {
		return s.Apply(step)
	}
	span := parent.Child(obs.KindStep, "step."+step.Kind())
	s.trace = span
	// Clear via defer so a panicking step (recovered by the server middleware)
	// cannot leave a stale span attached to the session.
	defer func() { s.trace = nil }()
	res, err := s.Apply(step)
	if err != nil {
		span.Set("error", err.Error())
	}
	if res.Hypothesis != nil {
		h := res.Hypothesis
		span.Set("hypothesis_id", h.ID)
		span.Set("p_value", h.Test.PValue)
		span.Set("alpha_invested", h.AlphaInvested)
		span.Set("rejected", h.Rejected)
		span.Set("support", h.SupportSize)
	}
	span.Set("wealth", s.Wealth())
	span.End()
	return res, err
}
