// Package core implements AWARE, the paper's primary contribution: a
// hypothesis-tracking layer for interactive data exploration that converts
// visualizations into default hypotheses (Section 2.3), routes them through an
// incremental α-investing procedure (Section 5), and exposes the risk-gauge
// state, the n_H1 "how much more data" annotation and bookmarked ("starred")
// important discoveries shown in the AWARE user interface (Figure 2).
package core

import (
	"errors"
	"fmt"

	"aware/internal/stats"
)

// Common errors.
var (
	// ErrUnknownVisualization is returned when referring to a visualization ID
	// that does not exist in the session.
	ErrUnknownVisualization = errors.New("core: unknown visualization")
	// ErrUnknownHypothesis is returned when referring to a hypothesis ID that
	// does not exist in the session.
	ErrUnknownHypothesis = errors.New("core: unknown hypothesis")
	// ErrNotComplementary is returned when rule 3 is requested for two
	// visualizations that do not share a target attribute.
	ErrNotComplementary = errors.New("core: visualizations do not share a target attribute")
	// ErrWealthExhausted is returned when the investing procedure has no
	// wealth left (Section 5.8): the session should stop generating
	// hypotheses.
	ErrWealthExhausted = errors.New("core: alpha-wealth exhausted, stop exploring")
)

// HypothesisStatus tracks the lifecycle of a tracked hypothesis.
type HypothesisStatus int

const (
	// StatusActive means the hypothesis was tested and its decision stands.
	StatusActive HypothesisStatus = iota
	// StatusSuperseded means a later hypothesis (heuristic rule 3) replaced
	// this one; its decision is kept for accounting but hidden from reports.
	StatusSuperseded
	// StatusDeleted means the user declared the visualization purely
	// descriptive after the fact; the spent budget is not refunded, but the
	// hypothesis no longer counts as a finding.
	StatusDeleted
)

// String implements fmt.Stringer.
func (s HypothesisStatus) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusSuperseded:
		return "superseded"
	case StatusDeleted:
		return "deleted"
	default:
		return fmt.Sprintf("HypothesisStatus(%d)", int(s))
	}
}

// HypothesisSource records which heuristic (or user action) created the
// hypothesis.
type HypothesisSource int

const (
	// SourceRule2 is heuristic rule 2: a filtered visualization compared
	// against the whole-population distribution.
	SourceRule2 HypothesisSource = iota
	// SourceRule3 is heuristic rule 3: two complementary filtered
	// visualizations compared against each other.
	SourceRule3
	// SourceUser is an explicitly user-defined hypothesis (for example the
	// t-test on mean age in Figure 1 F, or a hypothesis attached to an
	// unfiltered visualization under rule 1).
	SourceUser
)

// String implements fmt.Stringer.
func (s HypothesisSource) String() string {
	switch s {
	case SourceRule2:
		return "rule-2 (filter vs population)"
	case SourceRule3:
		return "rule-3 (filter vs complement)"
	case SourceUser:
		return "user-defined"
	default:
		return fmt.Sprintf("HypothesisSource(%d)", int(s))
	}
}

// Hypothesis is one tracked hypothesis: the AWARE risk gauge shows one list
// entry per Hypothesis (Figure 2 D).
type Hypothesis struct {
	// ID is the 1-based identifier within the session.
	ID int
	// Null and Alternative are the textual descriptions shown in the gauge,
	// e.g. "gender | salary>50k = gender" and "gender | salary>50k <> gender".
	Null        string
	Alternative string
	// Source records which heuristic created the hypothesis.
	Source HypothesisSource
	// Status is the lifecycle state.
	Status HypothesisStatus
	// VisualizationID links back to the visualization that triggered the
	// hypothesis (0 for user-defined hypotheses without one).
	VisualizationID int

	// Test is the underlying statistical test result (p-value, statistic,
	// degrees of freedom, effect size).
	Test stats.TestResult
	// AlphaInvested is the level α_j the investing rule assigned to this test.
	AlphaInvested float64
	// Rejected reports whether the null hypothesis was rejected (a discovery).
	Rejected bool
	// WealthAfter is the α-wealth remaining after this test.
	WealthAfter float64

	// SupportSize and PopulationSize describe how much data backed the test.
	SupportSize    int
	PopulationSize int

	// DataMultiplier is the n_H1 annotation: the multiple of the current
	// support size that would be needed (assuming the observed effect
	// persists) to reach the standard 80% power at the session's α. +Inf when
	// the observed effect is zero.
	DataMultiplier float64

	// Starred marks the hypothesis as an "important discovery" (Section 6).
	Starred bool
}

// EffectLabel returns the qualitative effect-size label the gauge colour-codes.
func (h *Hypothesis) EffectLabel() stats.EffectMagnitude {
	switch h.Test.Method {
	case "chi-squared goodness-of-fit test", "chi-squared test of independence":
		return stats.ClassifyCramersV(h.Test.EffectSize)
	default:
		return stats.ClassifyCohensD(h.Test.EffectSize)
	}
}

// Summary renders a one-line risk-gauge entry.
func (h *Hypothesis) Summary() string {
	verdict := "accepted"
	if h.Rejected {
		verdict = "REJECTED"
	}
	star := " "
	if h.Starred {
		star = "*"
	}
	return fmt.Sprintf("%s[%02d] %-11s p=%.4f alpha=%.4f effect=%.3f (%s) null %s | H1: %s",
		star, h.ID, verdict, h.Test.PValue, h.AlphaInvested, h.Test.EffectSize, h.EffectLabel(), h.Null, h.Alternative)
}
