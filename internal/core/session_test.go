package core_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	"aware/internal/census"
	"aware/internal/core"
	"aware/internal/dataset"
	"aware/internal/investing"
	"aware/internal/stats"
)

// testCensus builds a moderately sized census table shared by the tests.
func testCensus(t *testing.T) *dataset.Table {
	t.Helper()
	tab, err := census.Generate(census.Config{Rows: 8000, Seed: 3, SignalStrength: 1})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func newSession(t *testing.T, tab *dataset.Table) *core.Session {
	t.Helper()
	s, err := core.NewSession(tab, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSessionDefaultsAndValidation(t *testing.T) {
	tab := testCensus(t)
	s := newSession(t, tab)
	if s.Alpha() != 0.05 {
		t.Errorf("default alpha = %v", s.Alpha())
	}
	if s.PolicyName() != "epsilon-hybrid(0.5)" {
		t.Errorf("default policy = %q", s.PolicyName())
	}
	if math.Abs(s.Wealth()-0.05*0.95) > 1e-12 {
		t.Errorf("initial wealth = %v", s.Wealth())
	}
	if s.Data() != tab {
		t.Error("Data() should return the table")
	}
	if _, err := core.NewSession(nil, core.Options{}); err == nil {
		t.Error("expected error for nil dataset")
	}
	if _, err := core.NewSession(tab, core.Options{Alpha: 2}); err == nil {
		t.Error("expected error for invalid alpha")
	}
	if _, err := core.NewSession(tab, core.Options{TargetPower: 1.5}); err == nil {
		t.Error("expected error for invalid power")
	}
}

func TestRule1UnfilteredVisualizationIsDescriptive(t *testing.T) {
	s := newSession(t, testCensus(t))
	viz, hyp, err := s.AddVisualization(census.ColGender, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hyp != nil {
		t.Error("rule 1: unfiltered visualization must not create a hypothesis")
	}
	if viz.Filtered() {
		t.Error("visualization should be unfiltered")
	}
	if viz.Describe() != census.ColGender {
		t.Errorf("Describe = %q", viz.Describe())
	}
	if s.Wealth() != s.Gauge().InitialWealth {
		t.Error("descriptive visualization must not consume wealth")
	}
	if len(s.Hypotheses()) != 0 {
		t.Error("no hypotheses should be tracked")
	}
	hist, err := viz.Histogram(s.Data())
	if err != nil || len(hist) == 0 {
		t.Errorf("Histogram: %v, %v", hist, err)
	}
}

func TestRule2FilteredVisualizationCreatesHypothesis(t *testing.T) {
	s := newSession(t, testCensus(t))
	// Figure 1 (B): gender distribution filtered to salary > 50k.
	filter := dataset.Equals{Column: census.ColSalaryOver50K, Value: "true"}
	viz, hyp, err := s.AddVisualization(census.ColGender, filter)
	if err != nil {
		t.Fatal(err)
	}
	if hyp == nil {
		t.Fatal("rule 2: filtered visualization must create a hypothesis")
	}
	if hyp.Source != core.SourceRule2 {
		t.Errorf("source = %v", hyp.Source)
	}
	if viz.HypothesisID != hyp.ID {
		t.Error("visualization should link to its hypothesis")
	}
	if !strings.Contains(hyp.Null, "=") || !strings.Contains(hyp.Alternative, "<>") {
		t.Errorf("descriptions: %q / %q", hyp.Null, hyp.Alternative)
	}
	// The planted gender-salary correlation is strong; the default hypothesis
	// should be rejected and wealth should grow by omega.
	if !hyp.Rejected {
		t.Errorf("expected a discovery, p = %v alpha = %v", hyp.Test.PValue, hyp.AlphaInvested)
	}
	if s.Wealth() <= s.Gauge().InitialWealth {
		t.Error("a rejection should increase wealth")
	}
	if hyp.SupportSize <= 0 || hyp.SupportSize >= hyp.PopulationSize {
		t.Errorf("support = %d, population = %d", hyp.SupportSize, hyp.PopulationSize)
	}
	if hyp.EffectLabel() == "" {
		t.Error("effect label missing")
	}
}

func TestRule3ComparisonSupersedesRule2(t *testing.T) {
	s := newSession(t, testCensus(t))
	rich := dataset.Equals{Column: census.ColSalaryOver50K, Value: "true"}
	poor := dataset.Not{Inner: rich}
	// Figure 1 (B) and (C): gender | rich and gender | not rich side by side.
	vizB, hypB, err := s.AddVisualization(census.ColGender, rich)
	if err != nil {
		t.Fatal(err)
	}
	vizC, hypC, err := s.AddVisualization(census.ColGender, poor)
	if err != nil {
		t.Fatal(err)
	}
	comparison, err := s.CompareVisualizations(vizB.ID, vizC.ID)
	if err != nil {
		t.Fatal(err)
	}
	if comparison.Source != core.SourceRule3 {
		t.Errorf("source = %v", comparison.Source)
	}
	if hypB.Status != core.StatusSuperseded || hypC.Status != core.StatusSuperseded {
		t.Error("rule-2 hypotheses should be superseded by the comparison")
	}
	if comparison.Status != core.StatusActive {
		t.Error("comparison should be active")
	}
	// Active hypotheses: only the comparison.
	active := s.ActiveHypotheses()
	if len(active) != 1 || active[0].ID != comparison.ID {
		t.Errorf("active hypotheses = %v", active)
	}
	// All three consumed budget: decisions are never rolled back.
	if len(s.Hypotheses()) != 3 {
		t.Errorf("total hypotheses = %d", len(s.Hypotheses()))
	}
	// Mismatched targets are rejected.
	vizAge, _, err := s.AddVisualization(census.ColAge, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CompareVisualizations(vizB.ID, vizAge.ID); !errors.Is(err, core.ErrNotComplementary) {
		t.Error("expected core.ErrNotComplementary")
	}
	if _, err := s.CompareVisualizations(99, vizB.ID); !errors.Is(err, core.ErrUnknownVisualization) {
		t.Error("expected core.ErrUnknownVisualization")
	}
}

func TestFigure1WorkflowEndToEnd(t *testing.T) {
	// Reproduces the Section 2.4 mapping of the example session to hypotheses
	// m1, m1', m2, m3, m4'.
	tab := testCensus(t)
	s := newSession(t, tab)

	// Step A: gender over the whole data — descriptive.
	_, hypA, err := s.AddVisualization(census.ColGender, nil)
	if err != nil || hypA != nil {
		t.Fatalf("step A: %v, %v", hypA, err)
	}

	// Step B: gender | salary>50k — hypothesis m1.
	rich := dataset.Equals{Column: census.ColSalaryOver50K, Value: "true"}
	vizB, m1, err := s.AddVisualization(census.ColGender, rich)
	if err != nil || m1 == nil {
		t.Fatalf("step B: %v", err)
	}

	// Step C: gender | not(salary>50k) next to B — m1' supersedes m1.
	vizC, _, err := s.AddVisualization(census.ColGender, dataset.Not{Inner: rich})
	if err != nil {
		t.Fatal(err)
	}
	m1prime, err := s.CompareVisualizations(vizB.ID, vizC.ID)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Status != core.StatusSuperseded {
		t.Error("m1 should be superseded by m1'")
	}

	// Step D: marital status | PhD — hypothesis m2.
	phd := dataset.Equals{Column: census.ColEducation, Value: "PhD"}
	_, m2, err := s.AddVisualization(census.ColMaritalStatus, phd)
	if err != nil || m2 == nil {
		t.Fatalf("step D: %v", err)
	}

	// Step E: salary | PhD and never married — hypothesis m3.
	phdSingle := dataset.And{Terms: []dataset.Predicate{phd, dataset.Equals{Column: census.ColMaritalStatus, Value: "Never-Married"}}}
	_, m3, err := s.AddVisualization(census.ColSalaryOver50K, phdSingle)
	if err != nil || m3 == nil {
		t.Fatalf("step E: %v", err)
	}

	// Step F: the user compares the age distributions of high and low earners
	// within the chain and overrides the default with a t-test on the mean.
	chainRich := dataset.And{Terms: []dataset.Predicate{phdSingle, rich}}
	chainPoor := dataset.And{Terms: []dataset.Predicate{phdSingle, dataset.Not{Inner: rich}}}
	vizF1, m4, err := s.AddVisualization(census.ColAge, chainRich)
	if err != nil || m4 == nil {
		t.Fatalf("step F1: %v", err)
	}
	vizF2, m4b, err := s.AddVisualization(census.ColAge, chainPoor)
	if err != nil || m4b == nil {
		t.Fatalf("step F2: %v", err)
	}
	m4prime, err := s.CompareMeans(census.ColAge, vizF1.ID, vizF2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if m4.Status != core.StatusSuperseded || m4b.Status != core.StatusSuperseded {
		t.Error("default age hypotheses should be superseded by the t-test")
	}
	if m4prime.Test.Method != "Welch two-sample t-test" {
		t.Errorf("override method = %q", m4prime.Test.Method)
	}

	// The user decides m2 and m3 were stepping stones and deletes them.
	if err := s.DeclareDescriptive(4); err != nil { // viz 4 = marital | PhD
		t.Fatal(err)
	}
	if m2.Status != core.StatusDeleted {
		t.Errorf("m2 status = %v", m2.Status)
	}

	// Gauge accounting.
	g := s.Gauge()
	wantActive := 0
	for _, h := range s.Hypotheses() {
		if h.Status == core.StatusActive {
			wantActive++
		}
	}
	if g.Tests != wantActive {
		t.Errorf("gauge tests = %d, want %d", g.Tests, wantActive)
	}
	if g.RemainingWealth != s.Wealth() {
		t.Error("gauge wealth mismatch")
	}
	if !strings.Contains(g.Render(), "risk gauge") {
		t.Error("Render missing header")
	}
	if !strings.Contains(g.Render(), "[superseded]") || !strings.Contains(g.Render(), "[deleted]") {
		t.Error("Render should flag superseded and deleted hypotheses")
	}
	// m1' should remain among the discoveries (the gender/salary association
	// is real and strong in the synthetic census).
	found := false
	for _, d := range s.Discoveries() {
		if d.ID == m1prime.ID {
			found = true
		}
	}
	if !found {
		t.Error("m1' should be a discovery")
	}
}

func TestDecisionsNeverChangeAcrossSessionActions(t *testing.T) {
	s := newSession(t, testCensus(t))
	rich := dataset.Equals{Column: census.ColSalaryOver50K, Value: "true"}
	_, first, err := s.AddVisualization(census.ColGender, rich)
	if err != nil {
		t.Fatal(err)
	}
	firstRejected := first.Rejected
	firstP := first.Test.PValue
	// Perform a series of further actions.
	for _, edu := range []string{"HS", "Bachelor", "Master", "PhD"} {
		if _, _, err := s.AddVisualization(census.ColMaritalStatus, dataset.Equals{Column: census.ColEducation, Value: edu}); err != nil {
			t.Fatal(err)
		}
	}
	if first.Rejected != firstRejected || first.Test.PValue != firstP {
		t.Error("earlier decision changed after later tests")
	}
}

func TestTestAgainstExpectation(t *testing.T) {
	s := newSession(t, testCensus(t))
	viz, _, err := s.AddVisualization(census.ColGender, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The user expected many more men than women (rule 1's escape hatch).
	hyp, err := s.TestAgainstExpectation(viz.ID, map[string]float64{"Male": 3, "Female": 1, "Other": 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if hyp.Source != core.SourceUser {
		t.Errorf("source = %v", hyp.Source)
	}
	if viz.HypothesisID != hyp.ID {
		t.Error("visualization should link to the user hypothesis")
	}
	// The data is roughly balanced, so the expectation should be rejected.
	if !hyp.Rejected {
		t.Errorf("expected rejection of the skewed expectation, p = %v", hyp.Test.PValue)
	}
	if _, err := s.TestAgainstExpectation(99, nil); !errors.Is(err, core.ErrUnknownVisualization) {
		t.Error("expected unknown visualization error")
	}
}

func TestDeclareDescriptiveAndStar(t *testing.T) {
	s := newSession(t, testCensus(t))
	rich := dataset.Equals{Column: census.ColSalaryOver50K, Value: "true"}
	viz, hyp, err := s.AddVisualization(census.ColGender, rich)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Star(hyp.ID, true); err != nil {
		t.Fatal(err)
	}
	if got := s.ImportantDiscoveries(); len(got) != 1 || got[0].ID != hyp.ID {
		t.Errorf("important discoveries = %v", got)
	}
	if s.Gauge().Starred != 1 {
		t.Error("gauge starred count")
	}
	if err := s.Star(hyp.ID, false); err != nil {
		t.Fatal(err)
	}
	if len(s.ImportantDiscoveries()) != 0 {
		t.Error("unstarring should remove the important discovery")
	}
	if err := s.Star(99, true); !errors.Is(err, core.ErrUnknownHypothesis) {
		t.Error("expected unknown hypothesis error")
	}

	wealthBefore := s.Wealth()
	if err := s.DeclareDescriptive(viz.ID); err != nil {
		t.Fatal(err)
	}
	if hyp.Status != core.StatusDeleted {
		t.Error("hypothesis should be deleted")
	}
	if s.Wealth() != wealthBefore {
		t.Error("deleting must not refund wealth")
	}
	if len(s.ActiveHypotheses()) != 0 {
		t.Error("deleted hypothesis should not be active")
	}
	// Deleting a descriptive visualization is a no-op.
	vizPlain, _, _ := s.AddVisualization(census.ColAge, nil)
	if err := s.DeclareDescriptive(vizPlain.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.DeclareDescriptive(99); !errors.Is(err, core.ErrUnknownVisualization) {
		t.Error("expected unknown visualization error")
	}
}

func TestAddVisualizationErrors(t *testing.T) {
	s := newSession(t, testCensus(t))
	if _, _, err := s.AddVisualization("missing", nil); !errors.Is(err, dataset.ErrColumnNotFound) {
		t.Error("expected column-not-found error")
	}
	// A filter selecting nothing yields a degenerate test.
	impossible := dataset.Equals{Column: census.ColEducation, Value: "Kindergarten"}
	if _, _, err := s.AddVisualization(census.ColGender, impossible); err == nil {
		t.Error("expected error for empty sub-population")
	}
}

func TestWealthExhaustionSurfacesAsStop(t *testing.T) {
	// A gamma-fixed policy with small gamma exhausts quickly when the data is
	// random; the session must surface core.ErrWealthExhausted and the gauge must
	// say so.
	tab, err := census.Generate(census.Config{Rows: 4000, Seed: 9, SignalStrength: 0})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := investing.NewConfig(0.05)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := investing.NewFixed(3, cfg.InitialWealth())
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSession(tab, core.Options{Policy: fixed})
	if err != nil {
		t.Fatal(err)
	}
	// Each visualization filters on a distinct age range so that every test is
	// a fresh null hypothesis (the zero-signal census has no association
	// between age and any categorical attribute).
	targets := []string{census.ColGender, census.ColMaritalStatus, census.ColOccupation, census.ColEducation}
	exhausted := false
	for i := 0; i < 200 && !exhausted; i++ {
		target := targets[i%len(targets)]
		low := 18 + float64(i%55)
		filter := dataset.Range{Column: census.ColAge, Low: low, High: low + 10 + float64(i%7)}
		_, _, err := s.AddVisualization(target, filter)
		if errors.Is(err, core.ErrWealthExhausted) {
			exhausted = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !exhausted {
		t.Fatal("expected the gamma-fixed(3) session on random data to exhaust its wealth")
	}
	if !s.Gauge().Exhausted {
		t.Error("gauge should report exhaustion")
	}
}

func TestCompareDistributionsKS(t *testing.T) {
	s := newSession(t, testCensus(t))
	rich := dataset.Equals{Column: census.ColSalaryOver50K, Value: "true"}
	vizA, hypA, err := s.AddVisualization(census.ColAge, rich)
	if err != nil {
		t.Fatal(err)
	}
	vizB, hypB, err := s.AddVisualization(census.ColAge, dataset.Not{Inner: rich})
	if err != nil {
		t.Fatal(err)
	}
	hyp, err := s.CompareDistributions(census.ColAge, vizA.ID, vizB.ID)
	if err != nil {
		t.Fatal(err)
	}
	if hyp.Test.Method != "two-sample Kolmogorov-Smirnov test" {
		t.Errorf("method = %q", hyp.Test.Method)
	}
	if hypA.Status != core.StatusSuperseded || hypB.Status != core.StatusSuperseded {
		t.Error("default hypotheses should be superseded")
	}
	// The age/salary association is planted, so the KS comparison should be a
	// discovery.
	if !hyp.Rejected {
		t.Errorf("expected discovery, p = %v alpha = %v", hyp.Test.PValue, hyp.AlphaInvested)
	}
	if _, err := s.CompareDistributions(census.ColGender, vizA.ID, vizB.ID); err == nil {
		t.Error("categorical attribute should error")
	}
	if _, err := s.CompareDistributions(census.ColAge, 99, vizB.ID); !errors.Is(err, core.ErrUnknownVisualization) {
		t.Error("expected unknown visualization error")
	}
}

func TestDataMultiplierAnnotation(t *testing.T) {
	s := newSession(t, testCensus(t))
	rich := dataset.Equals{Column: census.ColSalaryOver50K, Value: "true"}
	_, hyp, err := s.AddVisualization(census.ColGender, rich)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(hyp.DataMultiplier) || hyp.DataMultiplier <= 0 {
		t.Errorf("DataMultiplier = %v", hyp.DataMultiplier)
	}
	// A strong effect on thousands of rows needs (much) less than the current
	// amount of data, so the multiplier should be below 1.
	if hyp.DataMultiplier >= 1 {
		t.Errorf("strong effect multiplier = %v, expected < 1", hyp.DataMultiplier)
	}
	if !strings.Contains(hyp.Summary(), "p=") {
		t.Error("Summary should include the p-value")
	}
}

func TestStatusAndSourceStrings(t *testing.T) {
	if core.StatusActive.String() != "active" || core.StatusSuperseded.String() != "superseded" || core.StatusDeleted.String() != "deleted" {
		t.Error("core.HypothesisStatus.String mismatch")
	}
	if core.HypothesisStatus(9).String() == "" {
		t.Error("unknown status should format")
	}
	if core.SourceRule2.String() == "" || core.SourceRule3.String() == "" || core.SourceUser.String() == "" || core.HypothesisSource(9).String() == "" {
		t.Error("core.HypothesisSource.String mismatch")
	}
}

func TestHoldoutValidatorMatchesSection41(t *testing.T) {
	// Build a dataset with a known mean shift (the Section 4.1 example:
	// mu1 = 0, mu2 = 1, sigma = 4) and verify that confirming on a 50/50
	// hold-out split is noticeably less powerful than testing once on all
	// the data.
	const n = 500
	const reps = 40
	rng := stats.NewRNG(17)
	confirmations, fullRejections := 0, 0
	var lastTable *dataset.Table
	for r := 0; r < reps; r++ {
		// Fresh draw per replication: the confirmation rate then estimates the
		// procedure's power rather than the luck of one fixed sample.
		group := make([]string, 2*n)
		value := make([]float64, 2*n)
		for i := 0; i < n; i++ {
			group[i] = "a"
			value[i] = stats.Normal{Mu: 0, Sigma: 4}.Rand(rng)
			group[n+i] = "b"
			value[n+i] = stats.Normal{Mu: 1, Sigma: 4}.Rand(rng)
		}
		tab, err := dataset.NewTable(
			dataset.NewCategoricalColumn("group", group),
			dataset.NewFloatColumn("value", value),
		)
		if err != nil {
			t.Fatal(err)
		}
		lastTable = tab

		// Full-data reference test.
		bs, _ := tab.Filter(dataset.Equals{Column: "group", Value: "b"})
		as, _ := tab.Filter(dataset.Equals{Column: "group", Value: "a"})
		bv, _ := bs.Floats("value")
		av, _ := as.Floats("value")
		full, err := stats.WelchTTest(bv, av, stats.Greater)
		if err != nil {
			t.Fatal(err)
		}
		if full.PValue <= 0.05 {
			fullRejections++
		}

		hv, err := core.NewHoldoutValidator(tab, 0.5, 0.05, stats.NewRNG(int64(100+r)))
		if err != nil {
			t.Fatal(err)
		}
		if hv.Exploration().NumRows()+hv.Validation().NumRows() != tab.NumRows() {
			t.Fatal("split loses rows")
		}
		res, err := hv.CompareMeans("value", dataset.Equals{Column: "group", Value: "b"}, stats.Greater)
		if err != nil {
			t.Fatal(err)
		}
		if res.Confirmed {
			confirmations++
		}
		if res.Alpha != 0.05 {
			t.Errorf("alpha = %v", res.Alpha)
		}
	}
	// Section 4.1: testing on the full data has power ~0.99, the hold-out
	// confirmation procedure only ~0.76. Allow generous Monte-Carlo slack.
	fullRate := float64(fullRejections) / reps
	holdRate := float64(confirmations) / reps
	if fullRate < 0.9 {
		t.Errorf("full-data rejection rate %v, paper reports ~0.99", fullRate)
	}
	if holdRate >= fullRate {
		t.Errorf("hold-out confirmation rate %v should be below the full-data rate %v", holdRate, fullRate)
	}
	if holdRate < 0.4 || holdRate > 0.97 {
		t.Errorf("hold-out confirmation rate %v outside the plausible band around 0.76", holdRate)
	}
	if _, err := core.NewHoldoutValidator(lastTable, 0.5, 0, stats.NewRNG(1)); err == nil {
		t.Error("expected alpha validation error")
	}
	if _, err := core.NewHoldoutValidator(lastTable, 2, 0.05, stats.NewRNG(1)); err == nil {
		t.Error("expected fraction validation error")
	}
}
