package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"aware/internal/dataset"
)

// roundTripStep marshals, unmarshals and re-marshals a step, requiring the
// two wire forms to be identical.
func roundTripStep(t *testing.T, step Step) Step {
	t.Helper()
	first, err := MarshalStep(step)
	if err != nil {
		t.Fatalf("MarshalStep(%#v): %v", step, err)
	}
	decoded, err := UnmarshalStep(first)
	if err != nil {
		t.Fatalf("UnmarshalStep(%s): %v", first, err)
	}
	second, err := MarshalStep(decoded)
	if err != nil {
		t.Fatalf("re-MarshalStep(%#v): %v", decoded, err)
	}
	if string(first) != string(second) {
		t.Errorf("round trip not lossless:\n first: %s\nsecond: %s", first, second)
	}
	if decoded.Kind() != step.Kind() {
		t.Errorf("kind changed: %q -> %q", step.Kind(), decoded.Kind())
	}
	return decoded
}

// TestStepJSONRoundTripEveryKind covers the whole closed step set, mirroring
// predjson_test for predicates.
func TestStepJSONRoundTripEveryKind(t *testing.T) {
	steps := []Step{
		AddVisualization{Target: "gender"},
		AddVisualization{Target: "gender", Filter: dataset.Equals{Column: "salary", Value: ">50k"}},
		CompareVisualizations{A: 1, B: 2},
		CompareMeans{Attribute: "age", A: 3, B: 4},
		CompareDistributions{Attribute: "hours", A: 2, B: 5},
		TestAgainstExpectation{Visualization: 1, Expected: map[string]float64{"Male": 3, "Female": 1, "Other": 0.05}},
		DeclareDescriptive{Visualization: 9},
		Star{Hypothesis: 4, Starred: true},
		Star{Hypothesis: 4, Starred: false},
	}
	for _, step := range steps {
		t.Run(step.Kind(), func(t *testing.T) {
			got := roundTripStep(t, step)
			if _, isStar := step.(Star); isStar {
				if got.(Star) != step.(Star) {
					t.Errorf("Star round trip: %#v -> %#v", step, got)
				}
			}
		})
	}
}

// TestStepJSONRoundTripEveryPredicateKind embeds each of the seven predicate
// types (including open-ended ranges) in an AddVisualization step.
func TestStepJSONRoundTripEveryPredicateKind(t *testing.T) {
	preds := map[string]dataset.Predicate{
		"equals": dataset.Equals{Column: "gender", Value: "Female"},
		"in":     dataset.In{Column: "education", Values: []string{"Master", "PhD"}},
		"range":  dataset.Range{Column: "age", Low: 30, High: 40},
		"range_open_ended": dataset.Range{
			Column: "age", Low: math.Inf(-1), High: math.Inf(1),
		},
		"gt":  dataset.GreaterThan{Column: "hours", Threshold: 45},
		"not": dataset.Not{Inner: dataset.Equals{Column: "gender", Value: "Male"}},
		"and": dataset.And{Terms: []dataset.Predicate{
			dataset.Equals{Column: "education", Value: "PhD"},
			dataset.GreaterThan{Column: "hours", Threshold: 40},
		}},
		"or": dataset.Or{Terms: []dataset.Predicate{
			dataset.Equals{Column: "marital", Value: "Never-Married"},
			dataset.Range{Column: "age", Low: 18, High: 25},
		}},
	}
	for name, pred := range preds {
		t.Run(name, func(t *testing.T) {
			decoded := roundTripStep(t, AddVisualization{Target: "gender", Filter: pred})
			av, ok := decoded.(AddVisualization)
			if !ok {
				t.Fatalf("decoded to %T", decoded)
			}
			if av.Filter == nil {
				t.Fatal("filter lost in round trip")
			}
			if av.Filter.Describe() != pred.Describe() {
				t.Errorf("filter changed: %q -> %q", pred.Describe(), av.Filter.Describe())
			}
		})
	}
}

// TestUnmarshalStepStrictness rejects unknown ops, unknown fields and missing
// required fields.
func TestUnmarshalStepStrictness(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"empty object", `{}`, "missing an op"},
		{"unknown op", `{"op": "drop_table"}`, "unknown step"},
		{"unknown field", `{"op": "star", "hypothesis": 1, "bogus": true}`, "bogus"},
		{"not json", `{`, "parsing step"},
		{"viz without target", `{"op": "add_visualization"}`, "requires a target"},
		{"bad predicate", `{"op": "add_visualization", "target": "g", "predicate": {"type": "nope"}}`, "unknown predicate type"},
		{"compare without ids", `{"op": "compare_visualizations"}`, "requires visualization ids"},
		{"means without attribute", `{"op": "compare_means", "a": 1, "b": 2}`, "requires an attribute"},
		{"means without ids", `{"op": "compare_means", "attribute": "age"}`, "requires visualization ids"},
		{"distributions without attribute", `{"op": "compare_distributions", "a": 1, "b": 2}`, "requires an attribute"},
		{"expectation without viz", `{"op": "test_against_expectation"}`, "requires a visualization"},
		{"descriptive without viz", `{"op": "declare_descriptive"}`, "requires a visualization"},
		{"star without hypothesis", `{"op": "star", "starred": true}`, "requires a hypothesis"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := UnmarshalStep([]byte(tc.in))
			if err == nil {
				t.Fatalf("UnmarshalStep(%s) succeeded, want error containing %q", tc.in, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
	// Unknown ops specifically surface ErrUnknownStep so servers can 400 them
	// with a typed check.
	if _, err := UnmarshalStep([]byte(`{"op": "drop_table"}`)); !errors.Is(err, ErrUnknownStep) {
		t.Errorf("unknown op error = %v, want ErrUnknownStep", err)
	}
	// Encoding the open set is equally guarded.
	if _, err := MarshalStep(nil); !errors.Is(err, ErrUnknownStep) {
		t.Errorf("MarshalStep(nil) = %v, want ErrUnknownStep", err)
	}
}

// TestAppliedStepJSONRoundTrip serializes a journal entry and back.
func TestAppliedStepJSONRoundTrip(t *testing.T) {
	entry := AppliedStep{
		Seq:             3,
		Step:            CompareMeans{Attribute: "age", A: 1, B: 2},
		HypothesisID:    7,
		VisualizationID: 0,
	}
	data, err := entry.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back AppliedStep
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if back.Seq != entry.Seq || back.HypothesisID != entry.HypothesisID || back.VisualizationID != entry.VisualizationID {
		t.Errorf("metadata changed: %+v -> %+v", entry, back)
	}
	if back.Step.(CompareMeans) != entry.Step.(CompareMeans) {
		t.Errorf("step changed: %#v -> %#v", entry.Step, back.Step)
	}
}
