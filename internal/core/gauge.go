package core

import (
	"fmt"
	"strings"
)

// RiskGauge is a snapshot of the state shown in AWARE's risk controller
// (Figure 2 A): the control level, the remaining α-wealth, and a list entry
// per hypothesis.
type RiskGauge struct {
	// Alpha is the mFDR control level ("budget for the false discovery rate").
	Alpha float64
	// InitialWealth and RemainingWealth bracket the α-investing budget.
	InitialWealth   float64
	RemainingWealth float64
	// Policy names the active investing rule.
	Policy string
	// Hypotheses is the scrollable list of tracked hypotheses (most recent
	// last), including superseded and deleted entries.
	Hypotheses []*Hypothesis
	// Discoveries, Tests and Starred are the headline counters.
	Tests       int
	Discoveries int
	Starred     int
	// Exhausted indicates that the procedure ran out of wealth and the user
	// should stop exploring (Section 5.8).
	Exhausted bool
}

// Gauge returns the current risk-gauge snapshot.
func (s *Session) Gauge() RiskGauge {
	g := RiskGauge{
		Alpha:           s.alpha,
		InitialWealth:   s.investor.Config().InitialWealth(),
		RemainingWealth: s.investor.Wealth(),
		Policy:          s.PolicyName(),
		Hypotheses:      s.Hypotheses(),
		Exhausted:       s.investor.Exhausted(),
	}
	for _, h := range s.hypotheses {
		if h.Status != StatusActive {
			continue
		}
		g.Tests++
		if h.Rejected {
			g.Discoveries++
		}
		if h.Starred && h.Rejected {
			g.Starred++
		}
	}
	return g
}

// Render produces the textual risk gauge used by the CLI front-end and the
// examples: a header with the budget followed by one line per hypothesis.
func (g RiskGauge) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "risk gauge — policy %s, alpha %.2f%%\n", g.Policy, 100*g.Alpha)
	fmt.Fprintf(&b, "wealth %.4f / %.4f", g.RemainingWealth, g.InitialWealth)
	if g.Exhausted {
		b.WriteString("  [EXHAUSTED — stop exploring]")
	}
	fmt.Fprintf(&b, "\ntests %d, discoveries %d, starred %d\n", g.Tests, g.Discoveries, g.Starred)
	for _, h := range g.Hypotheses {
		line := h.Summary()
		switch h.Status {
		case StatusSuperseded:
			line += "  [superseded]"
		case StatusDeleted:
			line += "  [deleted]"
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}
