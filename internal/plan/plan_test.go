package plan

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"aware/internal/dataset"
)

// testCatalog backs Catalog with an in-memory map, like the server's registry
// but without the HTTP layer.
type testCatalog struct {
	tables map[string]*dataset.Table
	caches map[string]*dataset.SelectionCache
}

func newTestCatalog() *testCatalog {
	return &testCatalog{
		tables: make(map[string]*dataset.Table),
		caches: make(map[string]*dataset.SelectionCache),
	}
}

func (c *testCatalog) add(name string, t *dataset.Table) {
	c.tables[name] = t
	c.caches[name] = dataset.NewSelectionCache(t)
}

func (c *testCatalog) Dataset(name string) (*dataset.Table, *dataset.SelectionCache, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, nil, fmt.Errorf("test catalog: no dataset %q", name)
	}
	return t, c.caches[name], nil
}

// factTable builds the left side: a key into the dimension plus numeric and
// categorical payloads.
func factTable(t *testing.T, rows int, seed int64) *dataset.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	keys := make([]string, rows)
	amounts := make([]float64, rows)
	regions := make([]string, rows)
	for i := range keys {
		keys[i] = []string{"a", "b", "c", "d"}[rng.Intn(4)]
		amounts[i] = float64(rng.Intn(500))
		regions[i] = []string{"north", "south"}[rng.Intn(2)]
	}
	tab, err := dataset.NewTable(
		dataset.NewCategoricalColumn("sku", keys),
		dataset.NewFloatColumn("amount", amounts),
		dataset.NewCategoricalColumn("region", regions),
	)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// dimTable builds the right side: one row per key plus an extra unmatched one.
func dimTable(t *testing.T) *dataset.Table {
	t.Helper()
	tab, err := dataset.NewTable(
		dataset.NewCategoricalColumn("sku", []string{"a", "b", "c", "d", "e"}),
		dataset.NewFloatColumn("price", []float64{10, 20, 30, 40, 50}),
		dataset.NewCategoricalColumn("tier", []string{"basic", "basic", "plus", "plus", "premium"}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// requireSameView compares two views cell for cell through materialized
// tables.
func requireSameView(t *testing.T, label string, got, want dataset.View) {
	t.Helper()
	gt, err := got.Materialize()
	if err != nil {
		t.Fatalf("%s: materialize got: %v", label, err)
	}
	wt, err := want.Materialize()
	if err != nil {
		t.Fatalf("%s: materialize want: %v", label, err)
	}
	if gt.NumRows() != wt.NumRows() {
		t.Fatalf("%s: %d rows, want %d", label, gt.NumRows(), wt.NumRows())
	}
	gn, wn := gt.ColumnNames(), wt.ColumnNames()
	if !reflect.DeepEqual(gn, wn) {
		t.Fatalf("%s: columns %v, want %v", label, gn, wn)
	}
	for _, name := range gn {
		gc, _ := gt.Column(name)
		wc, _ := wt.Column(name)
		for row := 0; row < gt.NumRows(); row++ {
			gs, gerr := gc.StringAt(row)
			ws, werr := wc.StringAt(row)
			if gerr == nil && werr == nil {
				if gs != ws {
					t.Fatalf("%s: column %q row %d: %q, want %q", label, name, row, gs, ws)
				}
				continue
			}
			gf, gerr := gc.Float(row)
			if gerr != nil {
				t.Fatalf("%s: column %q row %d: %v", label, name, row, gerr)
			}
			wf, _ := wc.Float(row)
			if gf != wf {
				t.Fatalf("%s: column %q row %d: %v, want %v", label, name, row, gf, wf)
			}
		}
	}
}

// TestOptimizeMergesAdjacentFilters pins the merge order: the inner filter's
// conjuncts become the prefix of the merged conjunction, so its cached bitmap
// subsumes the merged key.
func TestOptimizeMergesAdjacentFilters(t *testing.T) {
	tab := factTable(t, 10, 1)
	scan := TableScan{Table: tab}
	inner := dataset.Equals{Column: "region", Value: "north"}
	outer := dataset.Range{Column: "amount", Low: 0, High: 100}
	opt, err := Optimize(Filter{Input: Filter{Input: scan, Pred: inner}, Pred: outer}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := Filter{Input: scan, Pred: dataset.And{Terms: []dataset.Predicate{inner, outer}}}
	if !reflect.DeepEqual(opt, Node(want)) {
		t.Fatalf("optimized to %#v\nwant %#v", opt, want)
	}
}

// TestOptimizePushesThroughDerive splits a conjunction at a Derive: terms on
// base columns slide below, terms touching the derived column stay above.
func TestOptimizePushesThroughDerive(t *testing.T) {
	tab := factTable(t, 10, 2)
	scan := TableScan{Table: tab}
	derive := Derive{Input: scan, Name: "double", Expr: dataset.Binary{
		Op: dataset.OpMul, L: dataset.Col{Name: "amount"}, R: dataset.Const{Value: 2},
	}}
	onBase := dataset.Equals{Column: "region", Value: "south"}
	onDerived := dataset.GreaterThan{Column: "double", Threshold: 100}
	opt, err := Optimize(Filter{
		Input: derive,
		Pred:  dataset.And{Terms: []dataset.Predicate{onBase, onDerived}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := Filter{
		Input: Derive{Input: Filter{Input: scan, Pred: onBase}, Name: derive.Name, Expr: derive.Expr},
		Pred:  onDerived,
	}
	if !reflect.DeepEqual(opt, Node(want)) {
		t.Fatalf("optimized to %#v\nwant %#v", opt, want)
	}
}

// TestOptimizePushesThroughJoin attributes conjuncts to join sides: left
// terms reach the left scan, prefixed right terms are renamed back and reach
// the right scan, and terms on unknown columns stay above the join.
func TestOptimizePushesThroughJoin(t *testing.T) {
	cat := newTestCatalog()
	cat.add("fact", factTable(t, 10, 3))
	cat.add("dim", dimTable(t))
	join := Join{Left: Scan{Dataset: "fact"}, Right: Scan{Dataset: "dim"},
		LeftKey: "sku", RightKey: "sku", RightPrefix: "dim_"}
	onLeft := dataset.Equals{Column: "region", Value: "north"}
	onRight := dataset.Equals{Column: "dim_tier", Value: "plus"}
	onUnknown := dataset.Equals{Column: "nowhere", Value: "x"}
	opt, err := Optimize(Filter{
		Input: join,
		Pred:  dataset.And{Terms: []dataset.Predicate{onLeft, onRight, onUnknown}},
	}, cat)
	if err != nil {
		t.Fatal(err)
	}
	want := Filter{
		Input: Join{
			Left:    Filter{Input: join.Left, Pred: onLeft},
			Right:   Filter{Input: join.Right, Pred: dataset.Equals{Column: "tier", Value: "plus"}},
			LeftKey: "sku", RightKey: "sku", RightPrefix: "dim_",
		},
		Pred: onUnknown,
	}
	if !reflect.DeepEqual(opt, Node(want)) {
		t.Fatalf("optimized to %#v\nwant %#v", opt, want)
	}
}

// TestOptimizeKeepsFilterWhenSchemaUnresolvable leaves the filter above the
// join when a side's schema cannot be resolved (no catalog for a Scan): the
// plan still runs if execution can resolve it, and errors truthfully if not.
func TestOptimizeKeepsFilterWhenSchemaUnresolvable(t *testing.T) {
	join := Join{Left: Scan{Dataset: "fact"}, Right: Scan{Dataset: "dim"},
		LeftKey: "sku", RightKey: "sku", RightPrefix: "dim_"}
	pred := dataset.Equals{Column: "region", Value: "north"}
	opt, err := Optimize(Filter{Input: join, Pred: pred}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(opt, Node(Filter{Input: join, Pred: pred})) {
		t.Fatalf("optimized to %#v, want the filter kept in place", opt)
	}
	if _, err := Run(opt, nil); err == nil || !strings.Contains(err.Error(), "requires a catalog") {
		t.Fatalf("Run without catalog = %v, want a catalog error", err)
	}
}

// TestRunFiltersThroughCache proves scan-level filters resolve through the
// dataset's SelectionCache: re-running a filter is an exact hit, and
// extending it (a second Filter node above) is a subsumption partial hit.
func TestRunFiltersThroughCache(t *testing.T) {
	cat := newTestCatalog()
	cat.add("fact", factTable(t, 500, 4))
	cache := cat.caches["fact"]
	base := Filter{Input: Scan{Dataset: "fact"}, Pred: dataset.Equals{Column: "region", Value: "north"}}

	if _, err := Run(base, cat); err != nil {
		t.Fatal(err)
	}
	hits0, partial0, misses0 := cache.Stats()
	if misses0 == 0 {
		t.Fatal("first filter run compiled nothing")
	}

	if _, err := Run(base, cat); err != nil {
		t.Fatal(err)
	}
	if hits1, _, _ := cache.Stats(); hits1 != hits0+1 {
		t.Fatalf("re-running the same filter: hits %d -> %d, want an exact hit", hits0, hits1)
	}

	refined := Filter{Input: base, Pred: dataset.Range{Column: "amount", Low: 0, High: 250}}
	res, err := Run(refined, cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, partial1, _ := cache.Stats(); partial1 != partial0+1 {
		t.Fatalf("refining a cached filter: partial hits %d -> %d, want a subsumption hit", partial0, partial1)
	}

	// And the subsumption-served rows must equal the cold evaluation.
	tab := cat.tables["fact"]
	coldSel, err := tab.Where(dataset.And{Terms: []dataset.Predicate{base.Pred, refined.Pred}})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := dataset.NewView(tab, coldSel)
	if err != nil {
		t.Fatal(err)
	}
	requireSameView(t, "subsumption-served filter", res.View, cold)
}

// TestRunJoinPlanMatchesDirectEvaluation runs the full pipeline — filters
// pushed through a join over two scans, then a derive — and compares against
// evaluating the same operations directly against the dataset layer.
func TestRunJoinPlanMatchesDirectEvaluation(t *testing.T) {
	cat := newTestCatalog()
	fact, dim := factTable(t, 400, 5), dimTable(t)
	cat.add("fact", fact)
	cat.add("dim", dim)

	plan := Derive{
		Input: Filter{
			Input: Join{Left: Scan{Dataset: "fact"}, Right: Scan{Dataset: "dim"},
				LeftKey: "sku", RightKey: "sku", RightPrefix: "dim_"},
			Pred: dataset.And{Terms: []dataset.Predicate{
				dataset.Equals{Column: "region", Value: "north"},
				dataset.Equals{Column: "dim_tier", Value: "plus"},
			}},
		},
		Name: "revenue",
		Expr: dataset.Binary{Op: dataset.OpMul, L: dataset.Col{Name: "amount"}, R: dataset.Col{Name: "dim_price"}},
	}
	res, err := Run(plan, cat)
	if err != nil {
		t.Fatal(err)
	}

	// Direct evaluation, no plan layer: filter each side, hash join, derive.
	lsel, err := fact.Where(dataset.Equals{Column: "region", Value: "north"})
	if err != nil {
		t.Fatal(err)
	}
	lv, err := dataset.NewView(fact, lsel)
	if err != nil {
		t.Fatal(err)
	}
	rsel, err := dim.Where(dataset.Equals{Column: "tier", Value: "plus"})
	if err != nil {
		t.Fatal(err)
	}
	rv, err := dataset.NewView(dim, rsel)
	if err != nil {
		t.Fatal(err)
	}
	joined, err := dataset.HashJoin(lv, rv, "sku", "sku", "dim_")
	if err != nil {
		t.Fatal(err)
	}
	derived, err := joined.Derive("revenue", plan.Expr)
	if err != nil {
		t.Fatal(err)
	}
	want, err := dataset.NewView(derived, dataset.FullSelection(derived.NumRows()))
	if err != nil {
		t.Fatal(err)
	}
	requireSameView(t, "join plan", res.View, want)
	if res.View.NumRows() == 0 {
		t.Fatal("degenerate test: the joined, filtered view is empty")
	}
}

// TestRunGroupBy compares a GroupBy root against View.CrossCounts directly,
// and rejects group-bys anywhere else in the plan.
func TestRunGroupBy(t *testing.T) {
	cat := newTestCatalog()
	fact := factTable(t, 300, 6)
	cat.add("fact", fact)
	pred := dataset.GreaterThan{Column: "amount", Threshold: 100}

	res, err := Run(GroupBy{
		Input:   Filter{Input: Scan{Dataset: "fact"}, Pred: pred},
		RowAttr: "region",
		ColAttr: "amount",
	}, cat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cross == nil {
		t.Fatal("GroupBy root returned no contingency table")
	}

	view, err := fact.View(pred)
	if err != nil {
		t.Fatal(err)
	}
	want, err := view.CrossCounts("region", "amount", DefaultBins)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Cross, want) {
		t.Fatalf("cross tab %+v, want %+v", res.Cross, want)
	}

	_, err = Run(Filter{Input: GroupBy{Input: Scan{Dataset: "fact"}, RowAttr: "region", ColAttr: "sku"}, Pred: pred}, cat)
	if err == nil || !strings.Contains(err.Error(), "root") {
		t.Fatalf("non-root group-by: %v, want a root-position error", err)
	}
}

// TestRunValidation covers the execution-time contract errors.
func TestRunValidation(t *testing.T) {
	fact := factTable(t, 20, 7)
	other := factTable(t, 20, 8)
	cases := []struct {
		name string
		n    Node
		want string
	}{
		{"nil node", nil, "nil node"},
		{"scan without catalog", Scan{Dataset: "fact"}, "requires a catalog"},
		{"table scan without table", TableScan{}, "without a table"},
		{"cache bound elsewhere", TableScan{Table: other, Cache: dataset.NewSelectionCache(fact)}, "different table"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Run(tc.n, nil); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Run = %v, want error containing %q", err, tc.want)
			}
		})
	}
}
