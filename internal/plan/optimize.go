package plan

import (
	"fmt"
	"strings"

	"aware/internal/dataset"
)

// Optimize rewrites a plan into its executable normal form:
//
//   - adjacent Filter nodes merge into one flat conjunction, inner predicate
//     first — so a previously cached inner selection is a subsumption prefix
//     of the merged cache key;
//   - filter conjuncts push through Join and Derive nodes down to the scan
//     that owns their columns (right-side conjuncts are rewritten back to the
//     unprefixed column names), shrinking both join sides before the hash
//     table is ever built.
//
// Pushdown is semantics-preserving for this plan algebra: filters commute
// with Derive (the row set is unchanged) and an inner equi-join's matches
// restricted afterwards equal the join of the restricted sides. Conjuncts
// whose columns cannot be attributed to exactly one side — or whose predicate
// type the rewriter does not know — stay above the join. The catalog is only
// consulted for scan schemas; when resolution fails the filter simply stays
// where it is and execution surfaces the real error.
func Optimize(n Node, cat Catalog) (Node, error) {
	switch node := n.(type) {
	case Scan, TableScan:
		return n, nil
	case Filter:
		in, err := Optimize(node.Input, cat)
		if err != nil {
			return nil, err
		}
		return pushFilter(in, node.Pred, cat), nil
	case Derive:
		in, err := Optimize(node.Input, cat)
		if err != nil {
			return nil, err
		}
		return Derive{Input: in, Name: node.Name, Expr: node.Expr}, nil
	case Join:
		l, err := Optimize(node.Left, cat)
		if err != nil {
			return nil, err
		}
		r, err := Optimize(node.Right, cat)
		if err != nil {
			return nil, err
		}
		node.Left, node.Right = l, r
		return node, nil
	case GroupBy:
		in, err := Optimize(node.Input, cat)
		if err != nil {
			return nil, err
		}
		node.Input = in
		return node, nil
	case nil:
		return nil, fmt.Errorf("plan: nil node")
	default:
		return nil, fmt.Errorf("plan: unknown node type %T", n)
	}
}

// pushFilter places pred as low over the already-optimized input as the
// column ownership of its conjuncts allows. A nil predicate is the identity.
func pushFilter(input Node, pred dataset.Predicate, cat Catalog) Node {
	if pred == nil {
		return input
	}
	switch in := input.(type) {
	case Filter:
		// Merge with the filter below; its predicate evaluates first, so a
		// cached bitmap for it subsumes the merged conjunction.
		return pushFilter(in.Input, mergeAnd(in.Pred, pred), cat)
	case Derive:
		// Conjuncts that do not touch the derived column slide below it.
		var below, above []dataset.Predicate
		for _, term := range conjuncts(pred) {
			cols, ok := predicateColumns(term)
			if ok && !cols[in.Name] {
				below = append(below, term)
			} else {
				above = append(above, term)
			}
		}
		out := Node(in)
		if len(below) > 0 {
			out = Derive{Input: pushFilter(in.Input, andOf(below), cat), Name: in.Name, Expr: in.Expr}
		}
		if len(above) > 0 {
			out = Filter{Input: out, Pred: andOf(above)}
		}
		return out
	case Join:
		leftCols, lerr := schemaOf(in.Left, cat)
		rightCols, rerr := schemaOf(in.Right, cat)
		if lerr != nil || rerr != nil {
			return Filter{Input: input, Pred: pred}
		}
		var left, right, rest []dataset.Predicate
		for _, term := range conjuncts(pred) {
			switch side := joinSideOf(term, leftCols, rightCols, in.RightPrefix); side {
			case sideLeft:
				left = append(left, term)
			case sideRight:
				renamed, ok := renameColumns(term, func(c string) string {
					return strings.TrimPrefix(c, in.RightPrefix)
				})
				if !ok {
					rest = append(rest, term)
					continue
				}
				right = append(right, renamed)
			default:
				rest = append(rest, term)
			}
		}
		out := in
		if len(left) > 0 {
			out.Left = pushFilter(out.Left, andOf(left), cat)
		}
		if len(right) > 0 {
			out.Right = pushFilter(out.Right, andOf(right), cat)
		}
		if len(rest) > 0 {
			return Filter{Input: out, Pred: andOf(rest)}
		}
		return out
	default:
		return Filter{Input: input, Pred: pred}
	}
}

type joinSide int

const (
	sideNeither joinSide = iota
	sideLeft
	sideRight
)

// joinSideOf attributes one conjunct to the join side that owns every column
// it references. Right-side ownership means every column carries the right
// prefix and resolves in the right schema after stripping it. A conjunct that
// both sides could claim (possible before execution rejects the colliding
// schema) or that references unknown columns stays above the join.
func joinSideOf(term dataset.Predicate, leftCols, rightCols map[string]bool, prefix string) joinSide {
	cols, ok := predicateColumns(term)
	if !ok || len(cols) == 0 {
		return sideNeither
	}
	isLeft, isRight := true, true
	for c := range cols {
		if !leftCols[c] {
			isLeft = false
		}
		if !strings.HasPrefix(c, prefix) || !rightCols[strings.TrimPrefix(c, prefix)] {
			isRight = false
		}
	}
	switch {
	case isLeft && !isRight:
		return sideLeft
	case isRight && !isLeft:
		return sideRight
	default:
		return sideNeither
	}
}

// schemaOf resolves the output column set of a relational node.
func schemaOf(n Node, cat Catalog) (map[string]bool, error) {
	switch node := n.(type) {
	case Scan:
		if cat == nil {
			return nil, fmt.Errorf("plan: scan of %q requires a catalog", node.Dataset)
		}
		t, _, err := cat.Dataset(node.Dataset)
		if err != nil {
			return nil, err
		}
		return nameSet(t.ColumnNames()), nil
	case TableScan:
		if node.Table == nil {
			return nil, fmt.Errorf("plan: table scan without a table")
		}
		return nameSet(node.Table.ColumnNames()), nil
	case Filter:
		return schemaOf(node.Input, cat)
	case Derive:
		cols, err := schemaOf(node.Input, cat)
		if err != nil {
			return nil, err
		}
		cols[node.Name] = true
		return cols, nil
	case Join:
		left, err := schemaOf(node.Left, cat)
		if err != nil {
			return nil, err
		}
		right, err := schemaOf(node.Right, cat)
		if err != nil {
			return nil, err
		}
		for c := range right {
			left[node.RightPrefix+c] = true
		}
		return left, nil
	default:
		return nil, fmt.Errorf("plan: node %T has no relational schema", n)
	}
}

func nameSet(names []string) map[string]bool {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	return set
}

// conjuncts flattens a predicate's top-level conjunction (recursively through
// nested Ands) into its terms. Any other predicate is its own single conjunct.
func conjuncts(p dataset.Predicate) []dataset.Predicate {
	and, ok := p.(dataset.And)
	if !ok {
		return []dataset.Predicate{p}
	}
	out := make([]dataset.Predicate, 0, len(and.Terms))
	for _, t := range and.Terms {
		out = append(out, conjuncts(t)...)
	}
	return out
}

// mergeAnd conjoins two predicates into one flat And, a-first (nil operands
// are identities). Keeping a's conjuncts as the prefix is what lets the
// subsumption cache serve the merged predicate from a's cached bitmap.
func mergeAnd(a, b dataset.Predicate) dataset.Predicate {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	return andOf(append(conjuncts(a), conjuncts(b)...))
}

// andOf rebuilds a predicate from conjuncts without wrapping single terms.
func andOf(terms []dataset.Predicate) dataset.Predicate {
	if len(terms) == 1 {
		return terms[0]
	}
	return dataset.And{Terms: terms}
}

// predicateColumns returns the set of columns a predicate references, or
// ok=false for predicate types the rewriter does not know (which then stay
// above joins rather than being pushed somewhere wrong).
func predicateColumns(p dataset.Predicate) (map[string]bool, bool) {
	cols := make(map[string]bool)
	if !collectColumns(p, cols) {
		return nil, false
	}
	return cols, true
}

func collectColumns(p dataset.Predicate, into map[string]bool) bool {
	switch q := p.(type) {
	case dataset.Equals:
		into[q.Column] = true
	case dataset.In:
		into[q.Column] = true
	case dataset.Range:
		into[q.Column] = true
	case dataset.GreaterThan:
		into[q.Column] = true
	case dataset.Not:
		return collectColumns(q.Inner, into)
	case dataset.And:
		for _, t := range q.Terms {
			if !collectColumns(t, into) {
				return false
			}
		}
	case dataset.Or:
		for _, t := range q.Terms {
			if !collectColumns(t, into) {
				return false
			}
		}
	default:
		return false
	}
	return true
}

// renameColumns rebuilds a predicate with every referenced column renamed, or
// ok=false for unknown predicate types.
func renameColumns(p dataset.Predicate, rename func(string) string) (dataset.Predicate, bool) {
	switch q := p.(type) {
	case dataset.Equals:
		q.Column = rename(q.Column)
		return q, true
	case dataset.In:
		q.Column = rename(q.Column)
		return q, true
	case dataset.Range:
		q.Column = rename(q.Column)
		return q, true
	case dataset.GreaterThan:
		q.Column = rename(q.Column)
		return q, true
	case dataset.Not:
		inner, ok := renameColumns(q.Inner, rename)
		if !ok {
			return nil, false
		}
		q.Inner = inner
		return q, true
	case dataset.And:
		terms, ok := renameAll(q.Terms, rename)
		if !ok {
			return nil, false
		}
		return dataset.And{Terms: terms}, true
	case dataset.Or:
		terms, ok := renameAll(q.Terms, rename)
		if !ok {
			return nil, false
		}
		return dataset.Or{Terms: terms}, true
	default:
		return nil, false
	}
}

func renameAll(terms []dataset.Predicate, rename func(string) string) ([]dataset.Predicate, bool) {
	out := make([]dataset.Predicate, len(terms))
	for i, t := range terms {
		r, ok := renameColumns(t, rename)
		if !ok {
			return nil, false
		}
		out[i] = r
	}
	return out, true
}
