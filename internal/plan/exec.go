package plan

import (
	"fmt"

	"aware/internal/dataset"
)

// Result is the output of running a plan: a View over the produced rows for
// relational roots, or a contingency table when the root is a GroupBy.
type Result struct {
	View  dataset.View
	Cross *dataset.CrossTab
}

// Run optimizes and executes a plan. Scan-level filters resolve through the
// scanned dataset's SelectionCache — exact hits and subsumption partial hits
// included — so the cost of re-exploring overlapping predicates is the cache
// lookup, not a rescan. The catalog may be nil for plans built purely from
// TableScan nodes.
func Run(n Node, cat Catalog) (Result, error) {
	opt, err := Optimize(n, cat)
	if err != nil {
		return Result{}, err
	}
	if gb, ok := opt.(GroupBy); ok {
		in, err := exec(gb.Input, cat)
		if err != nil {
			return Result{}, err
		}
		v, err := dataset.NewView(in.table, in.sel)
		if err != nil {
			return Result{}, err
		}
		bins := gb.Bins
		if bins <= 0 {
			bins = DefaultBins
		}
		ct, err := v.CrossCounts(gb.RowAttr, gb.ColAttr, bins)
		if err != nil {
			return Result{}, err
		}
		return Result{Cross: ct}, nil
	}
	out, err := exec(opt, cat)
	if err != nil {
		return Result{}, err
	}
	v, err := dataset.NewView(out.table, out.sel)
	if err != nil {
		return Result{}, err
	}
	return Result{View: v}, nil
}

// execOut is one executed subtree: a table, the selected rows over it, and —
// while the lineage is still a pure cached scan plus filters — the scan's
// cache together with the predicate applied through it so far. Derives and
// joins produce fresh tables and clear the cache lineage.
type execOut struct {
	table *dataset.Table
	sel   *dataset.Selection
	cache *dataset.SelectionCache
	pred  dataset.Predicate
}

// exec runs one relational subtree bottom-up.
func exec(n Node, cat Catalog) (execOut, error) {
	switch node := n.(type) {
	case Scan:
		if cat == nil {
			return execOut{}, fmt.Errorf("plan: scan of %q requires a catalog", node.Dataset)
		}
		t, c, err := cat.Dataset(node.Dataset)
		if err != nil {
			return execOut{}, err
		}
		if t == nil || c == nil {
			return execOut{}, fmt.Errorf("plan: catalog resolved %q without a table or cache", node.Dataset)
		}
		sel, err := c.Where(nil)
		if err != nil {
			return execOut{}, err
		}
		return execOut{table: t, sel: sel, cache: c}, nil

	case TableScan:
		t, c := node.Table, node.Cache
		if c != nil {
			if t == nil {
				t = c.Table()
			} else if c.Table() != t {
				return execOut{}, fmt.Errorf("plan: table scan cache is bound to a different table")
			}
			sel, err := c.Where(nil)
			if err != nil {
				return execOut{}, err
			}
			return execOut{table: t, sel: sel, cache: c}, nil
		}
		if t == nil {
			return execOut{}, fmt.Errorf("plan: table scan without a table")
		}
		return execOut{table: t, sel: dataset.FullSelection(t.NumRows())}, nil

	case Filter:
		in, err := exec(node.Input, cat)
		if err != nil {
			return execOut{}, err
		}
		if node.Pred == nil {
			return in, nil
		}
		if in.cache != nil {
			// Still on the cached-scan lineage: resolve the accumulated
			// conjunction through the cache, where an earlier filter's bitmap
			// is an exact or subsumption hit.
			combined := mergeAnd(in.pred, node.Pred)
			sel, err := in.cache.Where(combined)
			if err != nil {
				return execOut{}, err
			}
			return execOut{table: in.table, sel: sel, cache: in.cache, pred: combined}, nil
		}
		// Post-derive/post-join table: compile cold and intersect with the
		// rows already selected.
		ts, err := in.table.Where(node.Pred)
		if err != nil {
			return execOut{}, err
		}
		if in.sel.Count() == in.sel.Len() {
			return execOut{table: in.table, sel: ts}, nil
		}
		sel := in.sel.And(ts)
		ts.Release()
		return execOut{table: in.table, sel: sel}, nil

	case Derive:
		in, err := exec(node.Input, cat)
		if err != nil {
			return execOut{}, err
		}
		nt, err := in.table.Derive(node.Name, node.Expr)
		if err != nil {
			return execOut{}, err
		}
		// The derived table has the same rows, so the input's selection
		// carries over unchanged; the cache lineage does not (it is bound to
		// the old table).
		return execOut{table: nt, sel: in.sel}, nil

	case Join:
		l, err := exec(node.Left, cat)
		if err != nil {
			return execOut{}, err
		}
		r, err := exec(node.Right, cat)
		if err != nil {
			return execOut{}, err
		}
		lv, err := dataset.NewView(l.table, l.sel)
		if err != nil {
			return execOut{}, err
		}
		rv, err := dataset.NewView(r.table, r.sel)
		if err != nil {
			return execOut{}, err
		}
		jt, err := dataset.HashJoin(lv, rv, node.LeftKey, node.RightKey, node.RightPrefix)
		if err != nil {
			return execOut{}, err
		}
		return execOut{table: jt, sel: dataset.FullSelection(jt.NumRows())}, nil

	case GroupBy:
		return execOut{}, fmt.Errorf("plan: group-by must be the root of a plan")

	case nil:
		return execOut{}, fmt.Errorf("plan: nil node")

	default:
		return execOut{}, fmt.Errorf("plan: unknown node type %T", n)
	}
}
