// Package plan is the relational query layer between the session engine and
// the columnar kernels: session steps compile into a small logical plan
// (scan → filter → derive → join → group-by), the optimizer pushes filter
// predicates down to the scans that own their columns, and execution resolves
// every scan-level filter through the dataset's subsumption-aware
// SelectionCache so repeated exploration of overlapping predicates reuses
// compiled bitmaps instead of rescanning.
//
// The plan is deliberately tiny — AWARE's exploration steps only ever need
// these five shapes — but it gives every step one shared contract: predicates
// run through the tuned Where kernels at the lowest possible node, joins pick
// their build side from exact bitmap cardinalities, and a group-by feeds one
// contingency table into the core evaluation layer.
package plan

import "aware/internal/dataset"

// Catalog resolves registered dataset names into their immutable table and
// shared filter-bitmap cache. The server's dataset registry implements it;
// library users can back it with anything (or pass nil when their plans only
// use TableScan nodes).
type Catalog interface {
	Dataset(name string) (*dataset.Table, *dataset.SelectionCache, error)
}

// Node is one logical plan node. The set is closed: Scan, TableScan, Filter,
// Derive, Join and GroupBy, assembled bottom-up (inputs inside outputs).
type Node interface {
	isNode()
}

// Scan reads a dataset registered in the catalog, through its shared
// selection cache.
type Scan struct {
	Dataset string
}

// TableScan reads a table the caller already holds. Cache, when non-nil, must
// be a SelectionCache over the same table and makes filters over this scan
// cache-served (and subsumption-eligible); nil compiles filters cold.
type TableScan struct {
	Table *dataset.Table
	Cache *dataset.SelectionCache
}

// Filter restricts its input to the rows matching Pred (nil keeps every row).
// The optimizer merges adjacent filters into one conjunction and pushes
// conjuncts through joins and derives to the scan that owns their columns.
type Filter struct {
	Input Node
	Pred  dataset.Predicate
}

// Derive extends its input with a computed numeric column (see dataset.Expr)
// without copying the existing columns or changing the row set.
type Derive struct {
	Input Node
	Name  string
	Expr  dataset.Expr
}

// Join hash equi-joins two inputs on LeftKey = RightKey. The output holds
// every left column under its own name and every right column renamed
// RightPrefix+name, one row per matching pair in (left, right) row order.
type Join struct {
	Left        Node
	Right       Node
	LeftKey     string
	RightKey    string
	RightPrefix string
}

// GroupBy tallies its input's rows into the contingency table of two
// attributes. Bins sizes the equal-width binning of numeric attributes
// (<= 0 means DefaultBins); categorical and bool attributes ignore it.
// A GroupBy must be the root of its plan: it produces counts, not rows.
type GroupBy struct {
	Input   Node
	RowAttr string
	ColAttr string
	Bins    int
}

// DefaultBins is the numeric binning a GroupBy node falls back to, matching
// the ten-bar histograms of the AWARE front-end.
const DefaultBins = 10

func (Scan) isNode()      {}
func (TableScan) isNode() {}
func (Filter) isNode()    {}
func (Derive) isNode()    {}
func (Join) isNode()      {}
func (GroupBy) isNode()   {}
