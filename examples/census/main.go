// Census walks through the exact exploration session of Figure 1 / Section
// 2.4 of the paper: Eve explores a census dataset, AWARE turns her
// visualizations into default hypotheses m1, m1', m2, m3 and she finally
// overrides the last default with an explicit t-test (m4').
//
// Run with:
//
//	go run ./examples/census
package main

import (
	"fmt"
	"log"

	"aware"
)

func main() {
	table, err := aware.GenerateCensus(aware.CensusConfig{Rows: 30000, Seed: 1, SignalStrength: 1})
	if err != nil {
		log.Fatal(err)
	}
	session, err := aware.NewSession(table, aware.SessionOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Step A — gender over the whole dataset. Rule 1: descriptive, no
	// hypothesis.
	stepA, _, err := session.AddVisualization("gender", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Step A:", stepA.Describe(), "(descriptive, no hypothesis)")

	// Step B — gender filtered to salary > 50k. Rule 2 creates m1: "the high
	// salary class has the same gender distribution as the whole dataset".
	rich := aware.Equals{Column: "salary_over_50k", Value: "true"}
	stepB, m1, err := session.AddVisualization("gender", rich)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Step B:", m1.Summary())

	// Step C — gender filtered to the complement, placed next to B. Rule 3
	// creates m1' ("the two gender distributions differ") and supersedes m1.
	stepC, _, err := session.AddVisualization("gender", aware.Not{Inner: rich})
	if err != nil {
		log.Fatal(err)
	}
	m1prime, err := session.CompareVisualizations(stepB.ID, stepC.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Step C:", m1prime.Summary())

	// Step D — marital status of PhDs: hypothesis m2.
	phd := aware.Equals{Column: "education", Value: "PhD"}
	_, m2, err := session.AddVisualization("marital_status", phd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Step D:", m2.Summary())

	// Step E — salary of unmarried PhDs: hypothesis m3.
	phdSingle := aware.And{Terms: []aware.Predicate{phd, aware.Equals{Column: "marital_status", Value: "Never-Married"}}}
	_, m3, err := session.AddVisualization("salary_over_50k", phdSingle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Step E:", m3.Summary())

	// Step F — the user compares the age distribution of high and low earners
	// within the chain, then overrides the default with a t-test on the mean
	// age (m4 -> m4').
	chainRich := aware.And{Terms: []aware.Predicate{phdSingle, rich}}
	chainPoor := aware.And{Terms: []aware.Predicate{phdSingle, aware.Not{Inner: rich}}}
	vizRich, _, err := session.AddVisualization("age", chainRich)
	if err != nil {
		log.Fatal(err)
	}
	vizPoor, _, err := session.AddVisualization("age", chainPoor)
	if err != nil {
		log.Fatal(err)
	}
	m4prime, err := session.CompareMeans("age", vizRich.ID, vizPoor.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Step F:", m4prime.Summary())

	// Eve decides the marital-status chart (step D) was only a stepping stone
	// and removes its hypothesis, then stars her headline findings.
	if err := session.DeclareDescriptive(4); err != nil {
		log.Fatal(err)
	}
	if err := session.Star(m1prime.ID, true); err != nil {
		log.Fatal(err)
	}
	if err := session.Star(m4prime.ID, true); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nFinal risk gauge:")
	fmt.Println(session.Gauge().Render())
	fmt.Println("Important (starred) discoveries, FDR-safe to report by Theorem 1:")
	for _, h := range session.ImportantDiscoveries() {
		fmt.Println(" ", h.Summary())
	}
}
