// Genomics demonstrates using the α-investing API directly for an automated
// screening pipeline — the "scientist searching for gene/effect correlations"
// scenario the paper uses to motivate the n_H1 annotation (Section 3). A
// stream of candidate markers is tested as it arrives; mFDR stays controlled
// without knowing how many candidates will ever be screened, and for each
// miss the pipeline reports how much more data would be needed.
//
// Run with:
//
//	go run ./examples/genomics
package main

import (
	"fmt"
	"log"
	"math"

	"aware"
)

// marker is one candidate association between a synthetic "gene" and the
// phenotype: carriers versus non-carriers of the variant.
type marker struct {
	name        string
	carriers    []float64
	nonCarriers []float64
}

func main() {
	rng := aware.NewRNG(2024)

	// Simulate 200 candidate markers; 10% carry a real (modest) effect.
	markers := make([]marker, 200)
	for i := range markers {
		effect := 0.0
		if i%10 == 0 {
			effect = 0.45 // real signal, standardized effect ~0.45
		}
		carriers := make([]float64, 120)
		nonCarriers := make([]float64, 120)
		for j := range carriers {
			carriers[j] = effect + rng.NormFloat64()
			nonCarriers[j] = rng.NormFloat64()
		}
		markers[i] = marker{name: fmt.Sprintf("gene-%03d", i), carriers: carriers, nonCarriers: nonCarriers}
	}

	// Screen them with the ψ-support rule: markers with fewer carriers get a
	// smaller share of the α-wealth.
	cfg := aware.DefaultInvestingConfig()
	policy, err := aware.NewSupport(0.5, 10, cfg.InitialWealth())
	if err != nil {
		log.Fatal(err)
	}
	investor, err := aware.NewInvestor(cfg, policy)
	if err != nil {
		log.Fatal(err)
	}

	var discoveries, trueHits int
	for i, m := range markers {
		res, err := aware.WelchTTest(m.carriers, m.nonCarriers, aware.Greater)
		if err != nil {
			log.Fatal(err)
		}
		decision, err := investor.Test(res.PValue, aware.TestContext{
			SupportSize:    len(m.carriers),
			PopulationSize: 500,
		})
		if err != nil {
			fmt.Printf("stopping after %d markers: %v\n", i, err)
			break
		}
		if decision.Rejected {
			discoveries++
			if i%10 == 0 {
				trueHits++
			}
			fmt.Printf("DISCOVERY %s: p=%.2e at level %.4f (effect d=%.2f)\n",
				m.name, res.PValue, decision.Alpha, res.EffectSize)
		} else if i%10 == 0 {
			// A real effect that was missed: report the n_H1 annotation.
			mult := math.NaN()
			if need, err := requiredMultiplier(len(m.carriers), res.EffectSize); err == nil {
				mult = need
			}
			fmt.Printf("missed %s (p=%.3f) — would need about %.1fx more carriers to confirm\n",
				m.name, res.PValue, mult)
		}
	}

	fmt.Printf("\nscreened %d markers, wealth remaining %.4f\n", investor.TestCount(), investor.Wealth())
	fmt.Printf("discoveries: %d (of which %d correspond to planted effects)\n", discoveries, trueHits)
	fmt.Println("mFDR is controlled at 5% regardless of how many markers arrive later.")
}

// requiredMultiplier is the closed-form n_H1 estimate AWARE shows next to each
// hypothesis: the multiple of the current per-group sample size needed to
// reach 80% power at alpha 0.05 if the observed effect size persists.
func requiredMultiplier(currentN int, effect float64) (float64, error) {
	if effect <= 0 {
		return math.Inf(1), nil
	}
	const zAlpha = 1.96  // alpha = 0.05, two-sided
	const zPower = 0.842 // power = 0.8
	need := 2 * math.Pow((zAlpha+zPower)/effect, 2)
	return need / float64(currentN), nil
}
