// Abtest shows AWARE-style mFDR control for a continuously running A/B testing
// platform — the "number of tests is not known upfront" setting that motivates
// α-investing over Bonferroni/BH in the first place. Experiments arrive week
// after week; each one is tested the moment its data is in, decisions are
// final, and the marginal false discovery rate stays below 5% no matter how
// long the program runs.
//
// Run with:
//
//	go run ./examples/abtest
package main

import (
	"fmt"
	"log"

	"aware"
)

// experiment is one A/B test: conversion counts for control and treatment.
type experiment struct {
	name                 string
	controlVisitors      int
	controlConversions   int
	treatmentVisitors    int
	treatmentConversions int
	trueLift             float64 // ground truth used only for the final tally
}

func main() {
	rng := aware.NewRNG(7)

	// Simulate 60 weekly experiments; one in five has a real +2pp lift.
	const baseRate = 0.10
	experiments := make([]experiment, 60)
	for i := range experiments {
		lift := 0.0
		if i%5 == 0 {
			lift = 0.02
		}
		e := experiment{
			name:              fmt.Sprintf("week-%02d", i+1),
			controlVisitors:   8000,
			treatmentVisitors: 8000,
			trueLift:          lift,
		}
		for v := 0; v < e.controlVisitors; v++ {
			if rng.Float64() < baseRate {
				e.controlConversions++
			}
		}
		for v := 0; v < e.treatmentVisitors; v++ {
			if rng.Float64() < baseRate+lift {
				e.treatmentConversions++
			}
		}
		experiments[i] = e
	}

	// γ-fixed keeps a constant budget per experiment, which fits a platform
	// that wants predictable week-over-week behaviour.
	cfg := aware.DefaultInvestingConfig()
	policy, err := aware.NewFixed(20, cfg.InitialWealth())
	if err != nil {
		log.Fatal(err)
	}
	investor, err := aware.NewInvestor(cfg, policy)
	if err != nil {
		log.Fatal(err)
	}

	shipped, trueWins := 0, 0
	for _, e := range experiments {
		table := [2][2]int{
			{e.treatmentConversions, e.treatmentVisitors - e.treatmentConversions},
			{e.controlConversions, e.controlVisitors - e.controlConversions},
		}
		res, err := aware.FisherExact(table, aware.Greater)
		if err != nil {
			log.Fatal(err)
		}
		decision, err := investor.Test(res.PValue, aware.TestContext{
			SupportSize:    e.treatmentVisitors + e.controlVisitors,
			PopulationSize: e.treatmentVisitors + e.controlVisitors,
		})
		if err != nil {
			fmt.Printf("%s: experimentation budget exhausted (%v) — pausing launches\n", e.name, err)
			break
		}
		if decision.Rejected {
			shipped++
			real := ""
			if e.trueLift > 0 {
				trueWins++
			} else {
				real = "  <-- would have been a false launch without the lift being real"
			}
			fmt.Printf("%s: SHIP (p=%.4f at level %.4f, odds ratio %.2f)%s\n",
				e.name, res.PValue, decision.Alpha, res.EffectSize, real)
		}
	}

	fmt.Printf("\n%d experiments evaluated, %d shipped, %d of the shipped changes had a real lift\n",
		investor.TestCount(), shipped, trueWins)
	fmt.Printf("remaining alpha-wealth: %.4f — mFDR stays below %.0f%% however many more weeks follow\n",
		investor.Wealth(), 100*cfg.Alpha)
}
