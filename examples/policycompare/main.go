// Policycompare helps choose an investing rule for a planned exploration
// session: it simulates streams with different signal densities and prints how
// each of the paper's five rules trades off discoveries, FDR and power —
// a miniature, self-service version of Figure 4.
//
// Run with:
//
//	go run ./examples/policycompare
//	go run ./examples/policycompare -hypotheses 128 -reps 500
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"text/tabwriter"

	"aware"
)

func main() {
	var (
		hypotheses = flag.Int("hypotheses", 64, "length of the simulated exploration session")
		reps       = flag.Int("reps", 300, "number of simulated sessions per configuration")
		seed       = flag.Int64("seed", 7, "random seed")
	)
	flag.Parse()

	scenarios := []struct {
		name           string
		nullProportion float64
	}{
		{"signal-rich (25% nulls)", 0.25},
		{"mostly noise (75% nulls)", 0.75},
		{"pure noise (100% nulls)", 1.00},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scenario\tpolicy\tavg discoveries\tavg FDR\tavg power")
	for _, sc := range scenarios {
		results, err := simulate(sc.nullProportion, *hypotheses, *reps, *seed)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			power := fmt.Sprintf("%.3f", r.power)
			if sc.nullProportion == 1 {
				power = "n/a"
			}
			fmt.Fprintf(w, "%s\t%s\t%.2f\t%.3f\t%s\n", sc.name, r.name, r.discoveries, r.fdr, power)
		}
	}
	w.Flush()
	fmt.Println("\nrules of thumb (Section 7.2): β-farsighted when early hypotheses matter most;")
	fmt.Println("γ-fixed for noisy data; δ-hopeful for signal-rich data; ε-hybrid when unsure;")
	fmt.Println("ψ-support when filters produce very small sub-populations.")
}

type result struct {
	name        string
	discoveries float64
	fdr         float64
	power       float64
}

// simulate runs every paper policy over reps synthetic sessions with the given
// null proportion and aggregates the outcomes.
func simulate(nullProportion float64, hypotheses, reps int, seed int64) ([]result, error) {
	cfg := aware.DefaultInvestingConfig()
	type factory struct {
		name  string
		build func() (aware.InvestingPolicy, error)
	}
	factories := []factory{
		{"beta-farsighted", func() (aware.InvestingPolicy, error) { return aware.NewFarsighted(0.25, cfg.Alpha) }},
		{"gamma-fixed", func() (aware.InvestingPolicy, error) { return aware.NewFixed(10, cfg.InitialWealth()) }},
		{"delta-hopeful", func() (aware.InvestingPolicy, error) { return aware.NewHopeful(10, cfg.Alpha, cfg.InitialWealth()) }},
		{"epsilon-hybrid", func() (aware.InvestingPolicy, error) {
			return aware.NewHybrid(0.5, 10, 10, cfg.Alpha, cfg.InitialWealth(), 0)
		}},
		{"psi-support", func() (aware.InvestingPolicy, error) { return aware.NewSupport(0.5, 10, cfg.InitialWealth()) }},
	}

	rng := aware.NewRNG(seed)
	sums := make(map[string]*result, len(factories))
	for _, f := range factories {
		sums[f.name] = &result{name: f.name}
	}
	powerCounts := make(map[string]int)

	for r := 0; r < reps; r++ {
		pvalues, trueNull := syntheticSession(rng, hypotheses, nullProportion)
		for _, f := range factories {
			policy, err := f.build()
			if err != nil {
				return nil, err
			}
			inv, err := aware.NewInvestor(cfg, policy)
			if err != nil {
				return nil, err
			}
			rejections, err := inv.Run(pvalues, nil)
			if err != nil {
				return nil, err
			}
			outcome, err := aware.EvaluateOutcome(rejections, trueNull)
			if err != nil {
				return nil, err
			}
			agg := sums[f.name]
			agg.discoveries += float64(outcome.Discoveries)
			agg.fdr += outcome.FDP()
			if p := outcome.Power(); p == p { // skip NaN under the complete null
				agg.power += p
				powerCounts[f.name]++
			}
		}
	}
	out := make([]result, 0, len(factories))
	for _, f := range factories {
		agg := sums[f.name]
		agg.discoveries /= float64(reps)
		agg.fdr /= float64(reps)
		if n := powerCounts[f.name]; n > 0 {
			agg.power /= float64(n)
		}
		out = append(out, *agg)
	}
	return out, nil
}

// syntheticSession draws one stream of p-values: true nulls are uniform,
// false nulls come from a z-statistic with non-centrality between 1.25 and 5.
func syntheticSession(rng interface {
	Float64() float64
	NormFloat64() float64
	Intn(int) int
}, hypotheses int, nullProportion float64) (pvalues []float64, trueNull []bool) {
	pvalues = make([]float64, hypotheses)
	trueNull = make([]bool, hypotheses)
	levels := []float64{1.25, 2.5, 3.75, 5}
	for i := range pvalues {
		trueNull[i] = rng.Float64() < nullProportion
		ncp := 0.0
		if !trueNull[i] {
			ncp = levels[rng.Intn(len(levels))]
		}
		z := math.Abs(ncp + rng.NormFloat64())
		// Two-sided p-value of a standard normal statistic.
		pvalues[i] = math.Erfc(z / math.Sqrt2)
	}
	return pvalues, trueNull
}
