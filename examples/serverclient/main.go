// Serverclient demonstrates awared's multi-session HTTP service layer and the
// typed Go client that fronts it: the example starts the server in-process on
// a loopback port, then lets several scripted analysts explore the synthetic
// census concurrently, each in their own FDR-controlled session. Every analyst
// follows the paper's interactive loop — filtered visualizations become
// auto-tracked hypotheses, the risk gauge reports the shrinking α-wealth, a
// promising finding is re-validated on a hold-out split, and the session ends
// with an exportable report.
//
// Run with:
//
//	go run ./examples/serverclient
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"sync"

	"aware/internal/api"
	"aware/internal/census"
	"aware/internal/client"
	"aware/internal/server"
)

// analyst scripts one user's exploration: a filter chain to drill into and a
// numeric attribute to validate on the hold-out split.
type analyst struct {
	name      string
	target    string
	predicate string
	holdout   string
}

var analysts = []analyst{
	{"amber", "gender", `{"type": "equals", "column": "salary_over_50k", "value": "true"}`, "age"},
	{"bruno", "education", `{"type": "gt", "column": "hours_per_week", "threshold": 45}`, "age"},
	{"carol", "marital_status", `{"type": "range", "column": "age", "low": 25, "high": 35}`, "hours_per_week"},
	{"dilip", "salary_over_50k", `{"type": "in", "column": "education", "values": ["Master", "PhD"]}`, "hours_per_week"},
	{"erika", "occupation", `{"type": "not", "term": {"type": "equals", "column": "gender", "value": "Male"}}`, "age"},
	{"fabio", "gender", `{"type": "and", "terms": [
		{"type": "equals", "column": "education", "value": "PhD"},
		{"type": "gt", "column": "hours_per_week", "threshold": 40}]}`, "hours_per_week"},
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "serverclient: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// Start awared's service layer in-process on a random loopback port.
	srv, err := server.New(server.Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	if err != nil {
		return err
	}
	table, err := census.Generate(census.Config{Rows: 10000, Seed: 1, SignalStrength: 1})
	if err != nil {
		return err
	}
	if err := srv.Registry().Register("census", table); err != nil {
		return err
	}
	listener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpServer := &http.Server{Handler: srv.Handler()}
	go httpServer.Serve(listener)
	defer httpServer.Close()
	base := "http://" + listener.Addr().String()
	fmt.Printf("awared serving the census (%d rows) at %s\n\n", table.NumRows(), base)

	// Each analyst explores concurrently in a private session, through their
	// own typed client.
	ctx := context.Background()
	results := make([]string, len(analysts))
	var wg sync.WaitGroup
	for i, a := range analysts {
		wg.Add(1)
		go func(i int, a analyst) {
			defer wg.Done()
			summary, err := explore(ctx, client.New(base), a)
			if err != nil {
				summary = fmt.Sprintf("%-6s FAILED: %v", a.name, err)
			}
			results[i] = summary
		}(i, a)
	}
	wg.Wait()

	for _, line := range results {
		fmt.Println(line)
	}

	// The service tracked every session independently.
	health, err := client.New(base).Health(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("\nserver health: %d live sessions, one risk gauge each — no\n", health.Sessions)
	fmt.Println("analyst's discoveries inflate any other's false discovery rate.")
	return nil
}

// explore drives one analyst through the full interactive loop and returns a
// one-line summary.
func explore(ctx context.Context, c *client.Client, a analyst) (string, error) {
	// 1. Open a session.
	session, err := c.CreateSession(ctx, api.SessionSpec{Dataset: "census"})
	if err != nil {
		return "", fmt.Errorf("creating session: %w", err)
	}

	// 2. A filtered visualization, sent as a serializable step command: rule 2
	// turns it into a tracked hypothesis and the step lands in the session's
	// replayable journal.
	step, err := json.Marshal(map[string]any{
		"op":        "add_visualization",
		"target":    a.target,
		"predicate": json.RawMessage(a.predicate),
	})
	if err != nil {
		return "", err
	}
	viz, err := c.ApplyRawStep(ctx, session.ID, step)
	if err != nil {
		return "", fmt.Errorf("applying add_visualization step: %w", err)
	}

	// 3. Star the discovery, if there was one.
	if viz.Hypothesis != nil && viz.Hypothesis.Rejected {
		if _, err := c.Star(ctx, session.ID, viz.Hypothesis.ID, true); err != nil {
			return "", fmt.Errorf("starring: %w", err)
		}
	}

	// 4. Check the risk gauge.
	gauge, err := c.Gauge(ctx, session.ID)
	if err != nil {
		return "", fmt.Errorf("reading gauge: %w", err)
	}

	// 5. Re-validate the subgroup's mean on a hold-out split.
	holdout, err := c.HoldoutValidate(ctx, session.ID, api.HoldoutValidateRequest{
		Attribute: a.holdout,
		Predicate: json.RawMessage(a.predicate),
	})
	if err != nil {
		return "", fmt.Errorf("holdout validation: %w", err)
	}

	// 6. Re-validate the whole recorded exploration on a hold-out split: the
	// step log replays independently on both halves (Section 4.1 generalized).
	replay, err := c.HoldoutReplay(ctx, session.ID, api.HoldoutReplayRequest{})
	if err != nil {
		return "", fmt.Errorf("holdout replay: %w", err)
	}

	// 7. Export the report.
	if _, err := c.Report(ctx, session.ID); err != nil {
		return "", fmt.Errorf("fetching report: %w", err)
	}

	confirmed := "not confirmed"
	if holdout.Confirmed {
		confirmed = "CONFIRMED"
	}
	return fmt.Sprintf("%-6s session %d: %d test(s), %d discovery(ies), wealth %.4f; holdout mean %s on %s: %s; log replay: %d/%d confirmed",
		a.name, session.ID, gauge.Tests, gauge.Discoveries, gauge.RemainingWealth, a.holdout, describeShort(a.predicate), confirmed, replay.Confirmed, replay.ActiveTotal), nil
}

// describeShort renders the predicate JSON compactly for the summary line.
func describeShort(predicate string) string {
	var buf bytes.Buffer
	if err := json.Compact(&buf, []byte(predicate)); err != nil {
		return predicate
	}
	s := buf.String()
	if len(s) > 48 {
		s = s[:45] + "..."
	}
	return s
}
