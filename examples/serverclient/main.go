// Serverclient demonstrates awared's multi-session HTTP service layer: it
// starts the server in-process on a loopback port, then lets several
// scripted analysts explore the synthetic census concurrently, each in their
// own FDR-controlled session. Every analyst follows the paper's interactive
// loop — filtered visualizations become auto-tracked hypotheses, the risk
// gauge reports the shrinking α-wealth, a promising finding is re-validated
// on a hold-out split, and the session ends with an exportable report.
//
// Run with:
//
//	go run ./examples/serverclient
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"sync"

	"aware/internal/census"
	"aware/internal/server"
)

// analyst scripts one user's exploration: a filter chain to drill into and a
// numeric attribute to validate on the hold-out split.
type analyst struct {
	name      string
	target    string
	predicate string
	holdout   string
}

var analysts = []analyst{
	{"amber", "gender", `{"type": "equals", "column": "salary_over_50k", "value": "true"}`, "age"},
	{"bruno", "education", `{"type": "gt", "column": "hours_per_week", "threshold": 45}`, "age"},
	{"carol", "marital_status", `{"type": "range", "column": "age", "low": 25, "high": 35}`, "hours_per_week"},
	{"dilip", "salary_over_50k", `{"type": "in", "column": "education", "values": ["Master", "PhD"]}`, "hours_per_week"},
	{"erika", "occupation", `{"type": "not", "term": {"type": "equals", "column": "gender", "value": "Male"}}`, "age"},
	{"fabio", "gender", `{"type": "and", "terms": [
		{"type": "equals", "column": "education", "value": "PhD"},
		{"type": "gt", "column": "hours_per_week", "threshold": 40}]}`, "hours_per_week"},
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "serverclient: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// Start awared's service layer in-process on a random loopback port.
	srv, err := server.New(server.Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	if err != nil {
		return err
	}
	table, err := census.Generate(census.Config{Rows: 10000, Seed: 1, SignalStrength: 1})
	if err != nil {
		return err
	}
	if err := srv.Registry().Register("census", table); err != nil {
		return err
	}
	listener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpServer := &http.Server{Handler: srv.Handler()}
	go httpServer.Serve(listener)
	defer httpServer.Close()
	base := "http://" + listener.Addr().String()
	fmt.Printf("awared serving the census (%d rows) at %s\n\n", table.NumRows(), base)

	// Each analyst explores concurrently in a private session.
	results := make([]string, len(analysts))
	var wg sync.WaitGroup
	for i, a := range analysts {
		wg.Add(1)
		go func(i int, a analyst) {
			defer wg.Done()
			summary, err := explore(base, a)
			if err != nil {
				summary = fmt.Sprintf("%-6s FAILED: %v", a.name, err)
			}
			results[i] = summary
		}(i, a)
	}
	wg.Wait()

	for _, line := range results {
		fmt.Println(line)
	}

	// The service tracked every session independently.
	var health struct {
		Sessions int `json:"sessions"`
	}
	if err := getJSON(base+"/healthz", &health); err != nil {
		return err
	}
	fmt.Printf("\nserver health: %d live sessions, one risk gauge each — no\n", health.Sessions)
	fmt.Println("analyst's discoveries inflate any other's false discovery rate.")
	return nil
}

// explore drives one analyst through the full interactive loop and returns a
// one-line summary.
func explore(base string, a analyst) (string, error) {
	// 1. Open a session.
	var session struct {
		ID int64 `json:"id"`
	}
	err := postJSON(base+"/sessions", map[string]any{"dataset": "census"}, &session)
	if err != nil {
		return "", fmt.Errorf("creating session: %w", err)
	}
	sessionURL := fmt.Sprintf("%s/sessions/%d", base, session.ID)

	// 2. A filtered visualization, sent as a serializable step command: rule 2
	// turns it into a tracked hypothesis and the step lands in the session's
	// replayable journal.
	var viz struct {
		Seq        int `json:"seq"`
		Hypothesis *struct {
			ID       int     `json:"id"`
			PValue   float64 `json:"p_value"`
			Rejected bool    `json:"rejected"`
		} `json:"hypothesis"`
	}
	err = postJSON(sessionURL+"/steps", map[string]any{
		"op":        "add_visualization",
		"target":    a.target,
		"predicate": json.RawMessage(a.predicate),
	}, &viz)
	if err != nil {
		return "", fmt.Errorf("applying add_visualization step: %w", err)
	}

	// 3. Star the discovery, if there was one.
	if viz.Hypothesis != nil && viz.Hypothesis.Rejected {
		starURL := fmt.Sprintf("%s/hypotheses/%d/star", sessionURL, viz.Hypothesis.ID)
		if err := postJSON(starURL, map[string]any{"starred": true}, nil); err != nil {
			return "", fmt.Errorf("starring: %w", err)
		}
	}

	// 4. Check the risk gauge.
	var gauge struct {
		RemainingWealth float64 `json:"remaining_wealth"`
		Tests           int     `json:"tests"`
		Discoveries     int     `json:"discoveries"`
	}
	if err := getJSON(sessionURL+"/gauge", &gauge); err != nil {
		return "", fmt.Errorf("reading gauge: %w", err)
	}

	// 5. Re-validate the subgroup's mean on a hold-out split.
	var holdout struct {
		Confirmed bool `json:"confirmed"`
	}
	err = postJSON(sessionURL+"/holdout/validate", map[string]any{
		"attribute": a.holdout,
		"predicate": json.RawMessage(a.predicate),
	}, &holdout)
	if err != nil {
		return "", fmt.Errorf("holdout validation: %w", err)
	}

	// 6. Re-validate the whole recorded exploration on a hold-out split: the
	// step log replays independently on both halves (Section 4.1 generalized).
	var replay struct {
		Confirmed   int `json:"confirmed"`
		ActiveTotal int `json:"active_total"`
	}
	if err := postJSON(sessionURL+"/holdout/replay", map[string]any{}, &replay); err != nil {
		return "", fmt.Errorf("holdout replay: %w", err)
	}

	// 7. Export the report.
	var report struct {
		Discoveries int `json:"discoveries"`
		Hypotheses  []struct {
			Null string `json:"null"`
		} `json:"hypotheses"`
	}
	if err := getJSON(sessionURL+"/report", &report); err != nil {
		return "", fmt.Errorf("fetching report: %w", err)
	}

	confirmed := "not confirmed"
	if holdout.Confirmed {
		confirmed = "CONFIRMED"
	}
	return fmt.Sprintf("%-6s session %d: %d test(s), %d discovery(ies), wealth %.4f; holdout mean %s on %s: %s; log replay: %d/%d confirmed",
		a.name, session.ID, gauge.Tests, gauge.Discoveries, gauge.RemainingWealth, a.holdout, describeShort(a.predicate), confirmed, replay.Confirmed, replay.ActiveTotal), nil
}

// describeShort renders the predicate JSON compactly for the summary line.
func describeShort(predicate string) string {
	var buf bytes.Buffer
	if err := json.Compact(&buf, []byte(predicate)); err != nil {
		return predicate
	}
	s := buf.String()
	if len(s) > 48 {
		s = s[:45] + "..."
	}
	return s
}

func postJSON(url string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	return decodeResponse(resp, out)
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return decodeResponse(resp, out)
}

func decodeResponse(resp *http.Response, out any) error {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, raw)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}
