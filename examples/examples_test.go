// Package examples holds runnable example programs; this build-only smoke
// test compiles each of them so facade refactors cannot silently break the
// documented entry points.
package examples

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

func TestExamplesBuild(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	outDir := t.TempDir()
	count := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		count++
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command(goBin, "build", "-o", filepath.Join(outDir, name), "./"+name)
			if out, err := cmd.CombinedOutput(); err != nil {
				t.Errorf("example %s does not build: %v\n%s", name, err, out)
			}
		})
	}
	if count < 6 {
		t.Errorf("found only %d example programs, expected at least 6", count)
	}
}
