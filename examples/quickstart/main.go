// Quickstart: open an AWARE session over the synthetic census, create a few
// visualizations, and read the risk gauge.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"aware"
)

func main() {
	// 1. Load data. Any aware.Table works; here we use the built-in synthetic
	//    census that mirrors the paper's evaluation dataset.
	table, err := aware.GenerateCensus(aware.CensusConfig{Rows: 20000, Seed: 1, SignalStrength: 1})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Open a session. The default configuration controls the marginal
	//    false discovery rate at 5% with the ε-hybrid investing rule.
	session, err := aware.NewSession(table, aware.SessionOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. An unfiltered chart is descriptive: no hypothesis, no α-wealth spent
	//    (heuristic rule 1).
	genderViz, _, err := session.AddVisualization("gender", nil)
	if err != nil {
		log.Fatal(err)
	}
	bars, err := genderViz.Histogram(table)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("gender distribution (descriptive):")
	for _, b := range bars {
		fmt.Printf("  %-8s %d\n", b.Value, b.Count)
	}

	// 4. A filtered chart becomes a default hypothesis: "the filter makes no
	//    difference" (heuristic rule 2). AWARE tests it immediately through
	//    the α-investing procedure and reports whether it is a discovery.
	_, hyp, err := session.AddVisualization("gender", aware.Equals{Column: "salary_over_50k", Value: "true"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndefault hypothesis for the filtered chart:")
	fmt.Println(" ", hyp.Summary())
	fmt.Printf("  need %.1fx the current data to flip this decision (n_H1 annotation)\n", hyp.DataMultiplier)

	// 5. Mark it as an important discovery; by Theorem 1 the starred subset
	//    keeps the same FDR guarantee.
	if err := session.Star(hyp.ID, true); err != nil {
		log.Fatal(err)
	}

	// 6. The risk gauge summarizes the session: control level, remaining
	//    α-wealth, and every tracked hypothesis.
	fmt.Println("\n" + session.Gauge().Render())
}
