module aware

go 1.22
